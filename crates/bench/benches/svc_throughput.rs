//! Batch-service throughput: jobs/sec through the worker pool, cold cache
//! vs warm cache, over the benchgen families. The warm numbers bound the
//! service overhead (fingerprint + cache probe + handle plumbing) per job;
//! the cold/warm gap is the memoization win.
//!
//! Setting `POPQC_SVC_REPORT=<path>` additionally runs one cold and one
//! warm pass through a fresh service and writes the JSON batch report
//! there, so CI can archive the cache-hit/oracle-call counters per PR
//! (`cargo bench --bench svc_throughput -- --test` for the smoke run).

use benchgen::Family;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use popqc_core::PopqcConfig;
use qcir::Circuit;
use qoracle::RuleBasedOptimizer;
use qsvc::report::{batch_report, service_report};
use qsvc::{OptimizationService, ServiceConfig};

fn batch() -> Vec<Circuit> {
    Family::ALL
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 42))
        .collect()
}

fn service(workers: usize) -> OptimizationService {
    OptimizationService::single(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers,
            threads_per_job: 1,
            cache_capacity: 256,
            cache_shards: 8,
        },
    )
}

fn bench_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/cold_batch");
    g.sample_size(10);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // One entry per distinct width: real criterion panics on duplicate
    // benchmark IDs, which [1, ncores] would produce on a 1-core machine.
    let widths: &[usize] = if ncores > 1 { &[1, ncores] } else { &[1] };
    for &workers in widths {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &circuits,
            |b, circuits| {
                // A fresh service per iteration: every job misses.
                b.iter_batched(
                    || service(workers),
                    |svc| svc.submit_batch(circuits.iter().cloned(), &cfg).wait(),
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    g.finish();
}

fn bench_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/warm_batch");
    g.sample_size(20);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));
    let svc = service(2);
    // Pre-warm: one cold pass populates the cache.
    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    assert_eq!(cold.cache_hits(), 0);
    g.bench_function("hits", |b| {
        b.iter(|| {
            let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
            debug_assert_eq!(warm.cache_hits(), circuits.len());
            warm
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cold, bench_warm
}

/// Writes the cold-vs-warm JSON batch report to `path`. Pass 1 must be all
/// misses and pass 2 all hits with zero oracle calls; the report makes the
/// counters inspectable without re-running.
fn write_service_report(path: &str) {
    let circuits = batch();
    let labels: Vec<String> = Family::ALL.iter().map(|f| f.name().to_string()).collect();
    let cfg = PopqcConfig::with_omega(100);
    let svc = service(2);

    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    assert_eq!(cold.cache_hits(), 0, "cold pass must be all misses");
    assert_eq!(
        warm.cache_hits(),
        circuits.len(),
        "warm pass must be all hits"
    );
    assert_eq!(warm.oracle_calls_issued(), 0);

    let passes = vec![
        batch_report(&labels, &cold, 1, false),
        batch_report(&labels, &warm, 2, false),
    ];
    let report = service_report(passes, &svc.stats(), svc.workers(), svc.threads_per_job());
    let text = serde_json::to_string_pretty(&report.to_json()).expect("serialize report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("svc report written to {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("POPQC_SVC_REPORT") {
        write_service_report(&path);
    }
}
