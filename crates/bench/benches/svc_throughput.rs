//! Batch-service throughput: jobs/sec through the worker pool, cold cache
//! vs warm cache, over the benchgen families. The warm numbers bound the
//! service overhead (fingerprint + cache probe + handle plumbing) per job;
//! the cold/warm gap is the memoization win. The warm group runs once per
//! store backend — `memory`, `tiered` (memory front over disk), and
//! `disk` (every hit deserializes from the cache directory) — so the
//! tiers' hit latencies sit side by side in one report. A fourth
//! `remote` entry routes every hit through an in-process loopback
//! [`CacheServer`] — the fleet path's wire round-trip floor.
//!
//! Setting `POPQC_SVC_REPORT=<path>` additionally runs one cold and one
//! warm pass through fresh memory-, tiered-, and remote-backed
//! services, and writes the JSON reports there
//! (`{"memory": …, "tiered": …, "remote": …}`), so CI can archive the per-backend
//! cache-hit/oracle-call counters per PR
//! (`cargo bench --bench svc_throughput -- --test` for the smoke run).

use benchgen::Family;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use popqc_core::PopqcConfig;
use qcir::Circuit;
use qoracle::{RuleBasedOptimizer, StructuralOptimizer};
use qsvc::report::{batch_report, service_report};
use qsvc::{
    build_store, CacheServer, CacheServerConfig, OptimizationService, OracleRegistry,
    ServiceConfig, StoreTier,
};
use std::path::PathBuf;

fn batch() -> Vec<Circuit> {
    Family::PAPER
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 42))
        .collect()
}

fn svc_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        threads_per_job: 1,
        cache_capacity: 256,
        cache_shards: 8,
        seg_cache_capacity: 0,
    }
}

fn service(workers: usize) -> OptimizationService {
    OptimizationService::single(RuleBasedOptimizer::oracle(), svc_config(workers))
}

/// A scratch cache directory for the persistent tiers, removed on drop.
struct BenchCacheDir(PathBuf);

impl BenchCacheDir {
    fn new(tag: &str) -> BenchCacheDir {
        let dir = std::env::temp_dir().join(format!("popqc-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BenchCacheDir(dir)
    }
}

impl Drop for BenchCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A service over an explicit store tier (the same seam `--cache-tier`
/// swaps), rooted at `dir` for the persistent tiers.
fn service_with_tier(workers: usize, tier: StoreTier, dir: &BenchCacheDir) -> OptimizationService {
    let store = build_store(tier, Some(&dir.0), None, 256, 8).expect("build bench store");
    OptimizationService::with_store(
        OracleRegistry::single(RuleBasedOptimizer::oracle()),
        svc_config(workers),
        store,
    )
}

/// An in-process `popqc cached` equivalent: a disk-backed [`CacheServer`]
/// on a loopback port, so the remote tier's warm numbers include a full
/// wire round-trip (connect-pooled) plus a server-side disk read per hit.
fn loopback_server(dir: &BenchCacheDir) -> CacheServer {
    let store = build_store(StoreTier::Disk, Some(&dir.0), None, 256, 8).expect("server store");
    CacheServer::serve("127.0.0.1:0", store, CacheServerConfig::default())
        .expect("serve loopback cache")
}

/// A service whose only store is the remote tier pointed at `server` —
/// no memory front, so every measured hit pays the wire.
fn service_with_remote(workers: usize, server: &CacheServer) -> OptimizationService {
    let addr = server.local_addr().to_string();
    let store = build_store(StoreTier::Remote, None, Some(&addr), 256, 8).expect("remote store");
    OptimizationService::with_store(
        OracleRegistry::single(RuleBasedOptimizer::oracle()),
        svc_config(workers),
        store,
    )
}

fn bench_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/cold_batch");
    g.sample_size(10);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // One entry per distinct width: real criterion panics on duplicate
    // benchmark IDs, which [1, ncores] would produce on a 1-core machine.
    let widths: &[usize] = if ncores > 1 { &[1, ncores] } else { &[1] };
    for &workers in widths {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &circuits,
            |b, circuits| {
                // A fresh service per iteration: every job misses.
                b.iter_batched(
                    || service(workers),
                    |svc| svc.submit_batch(circuits.iter().cloned(), &cfg).wait(),
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    g.finish();
}

fn bench_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/warm_batch");
    g.sample_size(20);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));

    // One warm benchmark per store backend, side by side: `memory` bounds
    // the pure service overhead, `tiered` adds the write-through front
    // (hits still answer from RAM), `disk` pays a full deserialize per
    // hit — the restart-path latency — and `remote` pays a loopback wire
    // round-trip to an in-process cache server per hit — the fleet-path
    // latency floor.
    let dir = BenchCacheDir::new("warm");
    let remote_dir = BenchCacheDir::new("warm-remote");
    let server = loopback_server(&remote_dir);
    let backends: [(&str, OptimizationService); 4] = [
        ("memory", service(2)),
        ("tiered", service_with_tier(2, StoreTier::Tiered, &dir)),
        ("disk", service_with_tier(2, StoreTier::Disk, &dir)),
        ("remote", service_with_remote(2, &server)),
    ];
    for (name, svc) in &backends {
        // Pre-warm: one pass populates the store (the tiered pass already
        // filled the shared disk directory, so the disk service may start
        // warm — all that matters is that the measured passes are hits).
        svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
        g.bench_function(BenchmarkId::new("hits", name), |b| {
            b.iter(|| {
                let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
                debug_assert_eq!(warm.cache_hits(), circuits.len());
                warm
            })
        });
    }

    // `hits/param`: the segment-cache counterpart of the store-hit rows.
    // The service runs the angle-independent `structural` oracle with the
    // segment cache on, pre-warmed by a seed-0 Parameterized batch. Every
    // measured submission carries FRESH angles — a result-store miss, so
    // the engine really runs — yet answers its segment lookups from the
    // angle-abstract cache: the marginal cost of one parameter-sweep
    // iteration with near-zero oracle calls.
    let param_svc = OptimizationService::single(
        StructuralOptimizer::new(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            cache_capacity: 256,
            cache_shards: 8,
            seg_cache_capacity: 4096,
        },
    );
    let param_batch = |seed: u64| -> Vec<Circuit> {
        Family::Parameterized
            .ladder(0)
            .iter()
            .map(|&q| Family::Parameterized.generate(q, seed))
            .collect()
    };
    param_svc.submit_batch(param_batch(0), &cfg).wait();
    let calls_after_warm = param_svc.stats().oracle_calls_issued;
    let mut next_seed = 1u64;
    g.bench_function(BenchmarkId::new("hits", "param"), |b| {
        b.iter(|| {
            let seed = next_seed;
            next_seed += 1;
            let swept = param_svc.submit_batch(param_batch(seed), &cfg).wait();
            // Fresh angles miss the result store; the work lands on the
            // segment cache instead of the oracle.
            debug_assert_eq!(swept.cache_hits(), 0);
            swept
        })
    });
    let marginal = param_svc.stats().oracle_calls_issued - calls_after_warm;
    debug_assert!(
        marginal * 10 <= calls_after_warm,
        "parameter sweep issued {marginal} marginal oracle calls \
         (warm-up issued {calls_after_warm})"
    );
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cold, bench_warm
}

/// One cold pass + one warm pass through `svc`, as a `ServiceReport`.
/// Pass 1 must be all misses and pass 2 all hits with zero oracle calls.
fn cold_warm_report(svc: &OptimizationService) -> qapi::ServiceReport {
    let circuits = batch();
    let labels: Vec<String> = Family::PAPER.iter().map(|f| f.name().to_string()).collect();
    let cfg = PopqcConfig::with_omega(100);

    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    assert_eq!(cold.cache_hits(), 0, "cold pass must be all misses");
    assert_eq!(
        warm.cache_hits(),
        circuits.len(),
        "warm pass must be all hits"
    );
    assert_eq!(warm.oracle_calls_issued(), 0);

    let passes = vec![
        batch_report(&labels, &cold, 1, false),
        batch_report(&labels, &warm, 2, false),
    ];
    service_report(passes, &svc.stats(), svc.workers(), svc.threads_per_job())
}

/// Writes the cold-vs-warm JSON reports for the memory, tiered, and
/// remote (loopback cache server) backends side by side, so CI archives
/// all three hit profiles (including the per-tier `cache_tiers`
/// counters) per PR.
fn write_service_report(path: &str) {
    let dir = BenchCacheDir::new("report");
    let remote_dir = BenchCacheDir::new("report-remote");
    let server = loopback_server(&remote_dir);
    let memory = cold_warm_report(&service(2));
    let tiered = cold_warm_report(&service_with_tier(2, StoreTier::Tiered, &dir));
    let remote = cold_warm_report(&service_with_remote(2, &server));
    let doc = serde_json::json!({
        "api_version": qapi::API_VERSION,
        "memory": memory.to_json(),
        "tiered": tiered.to_json(),
        "remote": remote.to_json(),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("svc report written to {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("POPQC_SVC_REPORT") {
        write_service_report(&path);
    }
}
