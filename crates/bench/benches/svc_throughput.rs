//! Batch-service throughput: jobs/sec through the worker pool, cold cache
//! vs warm cache, over the benchgen families. The warm numbers bound the
//! service overhead (fingerprint + cache probe + handle plumbing) per job;
//! the cold/warm gap is the memoization win.

use benchgen::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popqc_core::PopqcConfig;
use qcir::Circuit;
use qoracle::RuleBasedOptimizer;
use qsvc::{OptimizationService, ServiceConfig};

fn batch() -> Vec<Circuit> {
    Family::ALL
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 42))
        .collect()
}

fn service(workers: usize) -> OptimizationService<RuleBasedOptimizer> {
    OptimizationService::new(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers,
            threads_per_job: 1,
            cache_capacity: 256,
            cache_shards: 8,
        },
    )
}

fn bench_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/cold_batch");
    g.sample_size(10);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [1usize, ncores] {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &circuits,
            |b, circuits| {
                // A fresh service per iteration: every job misses.
                b.iter_batched(
                    || service(workers),
                    |svc| svc.submit_batch(circuits.iter().cloned(), &cfg).wait(),
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    g.finish();
}

fn bench_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc/warm_batch");
    g.sample_size(20);
    let circuits = batch();
    let cfg = PopqcConfig::with_omega(100);
    g.throughput(Throughput::Elements(circuits.len() as u64));
    let svc = service(2);
    // Pre-warm: one cold pass populates the cache.
    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    assert_eq!(cold.cache_hits(), 0);
    g.bench_function("hits", |b| {
        b.iter(|| {
            let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
            debug_assert_eq!(warm.cache_hits(), circuits.len());
            warm
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cold, bench_warm
}
criterion_main!(benches);
