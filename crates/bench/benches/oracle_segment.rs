//! Oracle cost on 2Ω-segments (Section 7.1's premise: oracles are fast on
//! small-to-moderate segments and degrade on whole circuits). Benchmarks the
//! rule-based fixpoint oracle across segment sizes, the quadratic
//! VOQC-profile merge for contrast, and the search oracle's budgeted cost.

use benchgen::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qoracle::{GateCount, RuleBasedOptimizer, SearchOptimizer, SegmentOracle};

fn segment(len: usize) -> (Vec<qcir::Gate>, u32) {
    // A realistic segment: a slice out of a mid-size Shor instance.
    let c = Family::Shor.generate(12, 7);
    let start = c.len() / 3;
    (
        c.gates[start..start + len.min(c.len() - start)].to_vec(),
        c.num_qubits,
    )
}

fn bench_rule_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/rule_based_fixpoint");
    for omega in [50usize, 100, 200, 400, 800] {
        let (seg, n) = segment(2 * omega);
        let oracle = RuleBasedOptimizer::oracle();
        g.throughput(Throughput::Elements(seg.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(2 * omega), &seg, |b, s| {
            b.iter(|| oracle.optimize(s, n))
        });
    }
    g.finish();
}

fn bench_voqc_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/voqc_profile_single_pass");
    for omega in [100usize, 400] {
        let (seg, n) = segment(2 * omega);
        let oracle = RuleBasedOptimizer::voqc_baseline();
        g.throughput(Throughput::Elements(seg.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(2 * omega), &seg, |b, s| {
            b.iter(|| oracle.run(s, n))
        });
    }
    g.finish();
}

fn bench_search_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/search");
    g.sample_size(10);
    for budget in [100usize, 300] {
        let (seg, n) = segment(80);
        let oracle = SearchOptimizer::new(GateCount, budget);
        g.bench_with_input(BenchmarkId::from_parameter(budget), &seg, |b, s| {
            b.iter(|| oracle.run(s, n))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rule_oracle, bench_voqc_profile, bench_search_oracle
}
criterion_main!(benches);
