//! Figure 3-style executor scaling on a skewed workload: the round
//! `parmap` proxy (one oracle call per 2Ω-segment) under the two
//! schedulers, side by side, across worker counts.
//!
//! * **naive** — the pre-qexec splitter, reproduced verbatim: one
//!   contiguous chunk per thread, fresh `std::thread::scope` threads per
//!   call. A chunk that draws the Skewed family's hot blocks serializes
//!   the whole call behind it.
//! * **stealing** — the same items through the rayon-shim facade onto the
//!   `popqc-exec` work-stealing pool (recursive splitting, stolen halves
//!   re-split on the thief).
//!
//! A second group sweeps full `optimize_circuit` runs across widths on
//! the same family — the end-to-end Figure 3 curve of this reproduction.
//!
//! Setting `POPQC_EXEC_REPORT=<path>` additionally writes a JSON artifact
//! with per-width timings for both schedulers, the speedup table, whether
//! stealing beat naive chunking at the maximum worker count, and the
//! executor's `ExecStats` counters (`cargo bench --bench exec_scaling --
//! --test` for the CI smoke run).

use benchgen::Family;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use popqc_core::PopqcConfig;
use qcir::Gate;
use qoracle::{RuleBasedOptimizer, SegmentOracle};
use rayon::prelude::*;
use std::time::Instant;

/// Segment length of the parmap proxy (2Ω at Ω = 50 — smaller than the
/// engine default so the fixed-size instance yields enough items to
/// schedule).
const SEGMENT: usize = 100;

/// Number of qubits for the skewed instance.
const QUBITS: u32 = 22;

/// The skewed circuit cut into consecutive 2Ω-segments — the work items
/// of one engine round, with Zipf-distributed per-item oracle cost.
fn segments() -> Vec<Vec<Gate>> {
    let circuit = Family::Skewed.generate(QUBITS, 42);
    circuit
        .gates
        .chunks(SEGMENT)
        .map(<[Gate]>::to_vec)
        .collect()
}

fn oracle() -> RuleBasedOptimizer {
    RuleBasedOptimizer::oracle()
}

/// The widths to sweep: 1, powers of two up to the core count, and the
/// core count itself — plus 4 so the schedulers separate even on small
/// CI hosts (the pool oversubscribes widths beyond the cores).
fn widths() -> Vec<usize> {
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut widths = vec![1usize, 2, 4];
    let mut t = 8;
    while t <= ncores {
        widths.push(t);
        t *= 2;
    }
    widths.push(ncores);
    widths.sort_unstable();
    widths.dedup();
    widths
}

/// The old shim's splitter, reproduced exactly: one contiguous chunk per
/// thread, fresh scoped threads per call. This is the baseline the
/// work-stealing executor replaced.
fn naive_chunked(items: &[Vec<Gate>], threads: usize, oracle: &RuleBasedOptimizer) -> usize {
    if threads <= 1 {
        return items
            .iter()
            .map(|seg| oracle.optimize(seg, QUBITS).len())
            .sum();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| {
                s.spawn(move || {
                    chunk
                        .iter()
                        .map(|seg| oracle.optimize(seg, QUBITS).len())
                        .sum::<usize>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("naive worker panicked"))
            .sum()
    })
}

/// The same items through the rayon-shim facade onto the qexec
/// work-stealing pool.
fn work_stealing(items: &[Vec<Gate>], threads: usize, oracle: &RuleBasedOptimizer) -> usize {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        items
            .par_iter()
            .map(|seg| oracle.optimize(seg, QUBITS).len())
            .collect::<Vec<usize>>()
            .into_iter()
            .sum()
    })
}

fn bench_parmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/skewed_parmap");
    g.sample_size(10);
    let items = segments();
    let oracle = oracle();
    g.throughput(Throughput::Elements(items.len() as u64));
    for &t in &widths() {
        g.bench_with_input(BenchmarkId::new("naive", t), &items, |b, items| {
            b.iter(|| naive_chunked(items, t, &oracle))
        });
        g.bench_with_input(BenchmarkId::new("stealing", t), &items, |b, items| {
            b.iter(|| work_stealing(items, t, &oracle))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/skewed_popqc");
    g.sample_size(10);
    let circuit = Family::Skewed.generate(QUBITS, 42);
    let oracle = oracle();
    let cfg = PopqcConfig::with_omega(50);
    g.throughput(Throughput::Elements(circuit.len() as u64));
    for &t in &widths() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(t), &circuit, |b, c| {
            b.iter(|| pool.install(|| popqc_core::optimize_circuit(c, &oracle, &cfg)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parmap, bench_end_to_end
}

/// Median-of-N wall time for `f`.
fn median_secs(n: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// The Figure 3-style scaling artifact: per-width medians for both
/// schedulers over the skewed parmap proxy, plus executor counters.
fn write_exec_report(path: &str) {
    let items = segments();
    let oracle = oracle();
    let widths = widths();
    let mut rows = Vec::new();
    for &t in &widths {
        let naive = median_secs(5, || naive_chunked(&items, t, &oracle));
        let stealing = median_secs(5, || work_stealing(&items, t, &oracle));
        rows.push(serde_json::json!({
            "workers": t,
            "naive_seconds": naive,
            "stealing_seconds": stealing,
            "stealing_speedup_vs_naive": naive / stealing,
        }));
    }
    let max_width = *widths.last().expect("non-empty width sweep");
    let last = rows.last().expect("non-empty sweep").clone();
    let beats = last
        .get("stealing_speedup_vs_naive")
        .and_then(serde_json::Value::as_f64)
        .map(|s| s >= 1.0)
        .unwrap_or(false);
    let exec = qexec::stats();
    let doc = serde_json::json!({
        "api_version": qapi::API_VERSION,
        "family": "Skewed",
        "qubits": QUBITS,
        "segment_gates": SEGMENT,
        "segments": items.len(),
        "max_workers": max_width,
        "sweep": rows,
        "stealing_beats_naive_at_max_workers": beats,
        "executor": serde_json::json!({
            "workers": exec.workers,
            "grain": exec.grain,
            "parallel_ops": exec.parallel_ops,
            "tasks_executed": exec.tasks_executed,
            "splits": exec.splits,
            "steals": exec.steals,
        }),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize exec report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("exec scaling report written to {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("POPQC_EXEC_REPORT") {
        write_exec_report(&path);
    }
}
