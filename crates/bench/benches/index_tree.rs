//! Micro-benchmarks for the Section 3 data structure: the stated cost
//! bounds are O(n) `create`, O(lg n) `before`/`select`, O(l·lg n)
//! `substitute`. Sweeping n over powers of two makes the logarithmic/linear
//! growth visible in the Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popqc_core::{IndexTree, SparseCircuit};

fn bench_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_tree/create");
    for exp in [10u32, 12, 14, 16] {
        let n = 1usize << exp;
        let weights = vec![1u32; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &weights, |b, w| {
            b.iter(|| IndexTree::new(w))
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_tree/queries");
    for exp in [10u32, 13, 16] {
        let n = 1usize << exp;
        // Half tombstones, alternating, to exercise real select paths.
        let weights: Vec<u32> = (0..n).map(|i| (i % 2 == 0) as u32).collect();
        let tree = IndexTree::new(&weights);
        g.bench_with_input(BenchmarkId::new("before", n), &tree, |b, t| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i * 7 + 13) % n;
                t.before(i)
            })
        });
        let total = tree.total();
        g.bench_with_input(BenchmarkId::new("select", n), &tree, |b, t| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i * 7 + 13) % total;
                t.select(i)
            })
        });
    }
    g.finish();
}

fn bench_substitute(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse/substitute");
    for exp in [12u32, 16] {
        let n = 1usize << exp;
        let batch = 256usize;
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || SparseCircuit::create((0..n as u64).collect::<Vec<_>>()),
                |mut sc| {
                    let ups: Vec<(usize, Option<u64>)> =
                        (0..batch).map(|k| (k * (n / batch), None)).collect();
                    sc.substitute(ups);
                    sc
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_create, bench_queries, bench_substitute
}
criterion_main!(benches);
