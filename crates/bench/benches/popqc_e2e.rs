//! End-to-end POPQC benchmarks: whole-pipeline cost on real benchmark
//! instances at 1 thread and all cores (the wall-clock counterpart of
//! Tables 1–2 at Criterion rigor, on instances small enough to iterate).

use benchgen::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popqc_core::PopqcConfig;
use qoracle::RuleBasedOptimizer;

fn bench_popqc(c: &mut Criterion) {
    let mut g = c.benchmark_group("popqc/e2e");
    g.sample_size(10);
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for family in [Family::Vqe, Family::Hhl] {
        let qubits = family.ladder(0)[1];
        let circuit = family.generate(qubits, 42);
        g.throughput(Throughput::Elements(circuit.len() as u64));
        for threads in [1usize, ncores] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let oracle = RuleBasedOptimizer::oracle();
            let cfg = PopqcConfig::with_omega(200);
            g.bench_with_input(
                BenchmarkId::new(format!("{}-{}", family.name(), qubits), threads),
                &circuit,
                |b, c| b.iter(|| pool.install(|| popqc_core::optimize_circuit(c, &oracle, &cfg))),
            );
        }
    }
    g.finish();
}

fn bench_oac_contrast(c: &mut Criterion) {
    let mut g = c.benchmark_group("popqc/vs_oac");
    g.sample_size(10);
    let family = Family::Grover;
    let circuit = family.generate(family.ladder(0)[1], 42);
    let oracle = RuleBasedOptimizer::oracle();
    g.bench_function("popqc_1t_omega400", |b| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let cfg = PopqcConfig::with_omega(400);
        b.iter(|| pool.install(|| popqc_core::optimize_circuit(&circuit, &oracle, &cfg)))
    });
    g.bench_function("oac_omega400", |b| {
        let cfg = oac::OacConfig::with_omega(400);
        b.iter(|| oac::oac_optimize(&circuit, &oracle, &cfg))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_popqc, bench_oac_contrast
}
criterion_main!(benches);
