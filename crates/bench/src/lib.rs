//! # popqc-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (Section 7
//! and Appendix A). Each experiment is a function over a shared
//! [`Opts`] bundle; the `experiments` binary dispatches subcommands
//! (`table1` … `table4`, `fig3` … `fig9`, `all`).
//!
//! Absolute numbers differ from the paper (different machine, generated
//! rather than downloaded benchmark circuits, re-implemented oracles); the
//! *shapes* — who wins, how speedups scale with size and cores, where
//! quality lands — are the reproduction target. EXPERIMENTS.md records
//! paper-vs-measured values for every artifact.

pub mod experiments;
pub mod harness;

pub use harness::{instances, Instance, Opts};
