//! Tables 1–4 of the paper.

use super::{run_baseline, run_popqc, speedup_string};
use crate::harness::{dump_json, fmt_pct, fmt_secs, instances, print_table, Opts};
use oac::{oac_optimize, OacConfig};
use qoracle::RuleBasedOptimizer;
use serde_json::json;

/// Shared engine for Tables 1 and 2 (they differ only in POPQC's thread
/// count).
fn popqc_vs_voqc(opts: &Opts, popqc_threads: usize, name: &str, title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(VOQC profile baseline: 1 thread, timeout {:?}; POPQC: {} thread(s), Ω={})",
        opts.timeout, popqc_threads, opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut red_base_sum = (0.0, 0u32);
    let mut red_pq_sum = (0.0, 0u32);
    let mut speedups = Vec::new();

    for inst in instances(opts) {
        let n = inst.circuit.len();
        let (base_out, base_time, base_to) = run_baseline(&inst.circuit, opts.timeout);
        let ((pq_out, stats), pq_time) =
            crate::harness::time(|| run_popqc(&inst.circuit, opts.omega, popqc_threads));
        let base_red = 1.0 - base_out.len() as f64 / n as f64;
        let pq_red = stats.reduction();
        if !base_to {
            red_base_sum.0 += base_red;
            red_base_sum.1 += 1;
        }
        red_pq_sum.0 += pq_red;
        red_pq_sum.1 += 1;
        let sp = base_time.as_secs_f64() / pq_time.as_secs_f64().max(1e-9);
        speedups.push(sp);

        rows.push(vec![
            inst.family.name().to_string(),
            inst.qubits.to_string(),
            n.to_string(),
            if base_to {
                "N.A.".into()
            } else {
                fmt_pct(base_red)
            },
            if base_to {
                format!("≥{}", fmt_secs(base_time))
            } else {
                fmt_secs(base_time)
            },
            fmt_pct(pq_red),
            fmt_secs(pq_time),
            speedup_string(base_time, base_to, pq_time),
        ]);
        records.push(json!({
            "family": inst.family.name(),
            "qubits": inst.qubits,
            "gates": n,
            "voqc_reduction": if base_to { serde_json::Value::Null } else { json!(base_red) },
            "voqc_seconds": base_time.as_secs_f64(),
            "voqc_timed_out": base_to,
            "popqc_reduction": pq_red,
            "popqc_seconds": pq_time.as_secs_f64(),
            "popqc_rounds": stats.rounds,
            "popqc_oracle_calls": stats.oracle_calls,
            "speedup": sp,
            "popqc_gates_out": pq_out.len(),
        }));
        let _ = pq_out;
    }
    print_table(
        &[
            "benchmark",
            "#qubits",
            "#gates",
            "voqc red",
            "voqc t(s)",
            "popqc red",
            "popqc t(s)",
            "speedup",
        ],
        &rows,
    );
    let avg_sp = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "average: voqc reduction {} | popqc reduction {} | speedup {:.1}",
        fmt_pct(red_base_sum.0 / red_base_sum.1.max(1) as f64),
        fmt_pct(red_pq_sum.0 / red_pq_sum.1.max(1) as f64),
        avg_sp
    );
    dump_json(
        opts,
        name,
        &json!({ "rows": records, "average_speedup": avg_sp }),
    );
}

/// Table 1: POPQC on all cores vs the whole-circuit VOQC-profile baseline.
pub fn table1(opts: &Opts) {
    popqc_vs_voqc(
        opts,
        opts.max_threads(),
        "table1",
        "Table 1: POPQC (all cores) vs whole-circuit oracle (VOQC profile)",
    );
}

/// Table 2: both on one thread — the local-optimality speedup in isolation.
pub fn table2(opts: &Opts) {
    popqc_vs_voqc(
        opts,
        1,
        "table2",
        "Table 2: POPQC (1 thread) vs whole-circuit oracle (1 thread)",
    );
}

/// Table 3: POPQC (1 thread, Ω=400) vs the OAC sequential baseline with the
/// same oracle and Ω.
pub fn table3(opts: &Opts) {
    let omega = 400;
    println!("\n=== Table 3: POPQC (1 thread) vs OAC, same oracle, Ω={omega} ===");
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let oracle = RuleBasedOptimizer::oracle();
    for inst in instances(opts) {
        let n = inst.circuit.len();
        let ((oac_out, oac_stats), oac_time) = crate::harness::time(|| {
            oac_optimize(&inst.circuit, &oracle, &OacConfig::with_omega(omega))
        });
        let ((pq_out, pq_stats), pq_time) =
            crate::harness::time(|| run_popqc(&inst.circuit, omega, 1));
        rows.push(vec![
            inst.family.name().to_string(),
            inst.qubits.to_string(),
            n.to_string(),
            fmt_secs(oac_time),
            fmt_secs(pq_time),
            fmt_pct(oac_stats.reduction()),
            fmt_pct(pq_stats.reduction()),
            format!(
                "{:.2}",
                oac_time.as_secs_f64() / pq_time.as_secs_f64().max(1e-9)
            ),
        ]);
        records.push(json!({
            "family": inst.family.name(),
            "qubits": inst.qubits,
            "gates": n,
            "oac_seconds": oac_time.as_secs_f64(),
            "popqc_seconds": pq_time.as_secs_f64(),
            "oac_reduction": oac_stats.reduction(),
            "popqc_reduction": pq_stats.reduction(),
            "oac_gates_out": oac_out.len(),
            "popqc_gates_out": pq_out.len(),
        }));
    }
    print_table(
        &[
            "benchmark",
            "#qubits",
            "#gates",
            "oac t(s)",
            "popqc t(s)",
            "oac red",
            "popqc red",
            "oac/popqc",
        ],
        &rows,
    );
    dump_json(opts, "table3", &json!({ "rows": records }));
}

/// Table 4: sensitivity to the initial gate ordering.
pub fn table4(opts: &Opts) {
    println!(
        "\n=== Table 4: initial ordering sensitivity (Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for family in benchgen::Family::PAPER {
        let mut sums = [0.0f64; 3];
        let mut count = 0u32;
        for qubits in family.ladder(opts.scale) {
            let c = family.generate(qubits, opts.seed);
            let variants = [c.left_justified(), c.right_justified(), c.clone()];
            for (k, v) in variants.iter().enumerate() {
                let (_, stats) = run_popqc(v, opts.omega, opts.max_threads());
                sums[k] += stats.reduction();
            }
            count += 1;
        }
        let avg = |k: usize| sums[k] / count as f64;
        rows.push(vec![
            family.name().to_string(),
            fmt_pct(avg(0)),
            fmt_pct(avg(1)),
            fmt_pct(avg(2)),
        ]);
        records.push(json!({
            "family": family.name(),
            "left_justified": avg(0),
            "right_justified": avg(1),
            "default": avg(2),
        }));
    }
    print_table(
        &["benchmark", "left-justified", "right-justified", "default"],
        &rows,
    );
    dump_json(opts, "table4", &json!({ "rows": records }));
}
