//! Ablation: how much of the Table 1/2 gap comes from the baseline's
//! algorithmic profile (VOQC's quadratic rotation merge) versus locality
//! and parallelism?
//!
//! Three configurations on the largest instance of each family:
//!
//! * **faithful** — whole-circuit single pass sequence with the quadratic
//!   per-rotation-scan merge (the Tables 1–2 baseline);
//! * **modern** — same sequence with the linear phase-folding merge (this
//!   reproduction's improved whole-circuit optimizer);
//! * **POPQC (1 thread)** — locality alone, no parallelism.
//!
//! The faithful/modern gap quantifies deviation #3 in EXPERIMENTS.md; the
//! modern/POPQC gap is the residual benefit of Ω-bounded convergence.

use super::run_popqc;
use crate::harness::{dump_json, extreme_instances, fmt_pct, fmt_secs, print_table, Opts};
use qoracle::RuleBasedOptimizer;
use serde_json::json;

/// Runs the ablation table.
pub fn ablation(opts: &Opts) {
    println!(
        "\n=== Ablation: faithful vs modernized baseline vs POPQC-1t (Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (_, large) in extreme_instances(opts) {
        let c = &large.circuit;
        let faithful = RuleBasedOptimizer::voqc_baseline();
        let (f_out, f_t) = crate::harness::time(|| faithful.optimize_circuit(c));
        let modern = RuleBasedOptimizer::modern_baseline();
        let (m_out, m_t) = crate::harness::time(|| modern.optimize_circuit(c));
        let ((p_out, _), p_t) = crate::harness::time(|| run_popqc(c, opts.omega, 1));
        rows.push(vec![
            large.family.name().to_string(),
            c.len().to_string(),
            format!(
                "{} ({})",
                fmt_secs(f_t),
                fmt_pct(1.0 - f_out.len() as f64 / c.len() as f64)
            ),
            format!(
                "{} ({})",
                fmt_secs(m_t),
                fmt_pct(1.0 - m_out.len() as f64 / c.len() as f64)
            ),
            format!(
                "{} ({})",
                fmt_secs(p_t),
                fmt_pct(1.0 - p_out.len() as f64 / c.len() as f64)
            ),
            format!("{:.1}", f_t.as_secs_f64() / m_t.as_secs_f64().max(1e-9)),
        ]);
        records.push(json!({
            "family": large.family.name(),
            "gates": c.len(),
            "faithful_seconds": f_t.as_secs_f64(),
            "modern_seconds": m_t.as_secs_f64(),
            "popqc1t_seconds": p_t.as_secs_f64(),
            "faithful_gates_out": f_out.len(),
            "modern_gates_out": m_out.len(),
            "popqc_gates_out": p_out.len(),
        }));
    }
    print_table(
        &[
            "benchmark",
            "#gates",
            "faithful t(s) (red)",
            "modern t(s) (red)",
            "popqc-1t t(s) (red)",
            "faithful/modern",
        ],
        &rows,
    );
    dump_json(opts, "ablation", &json!({ "rows": records }));
}
