//! One function per table/figure of the paper's evaluation.

mod ablation;
mod figures;
mod tables;

pub use ablation::ablation;
pub use figures::{fig3, fig4, fig5, fig6, fig7, fig8, fig9};
pub use tables::{table1, table2, table3, table4};

use crate::harness::{pool, Opts};
use popqc_core::{PopqcConfig, PopqcStats};
use qcir::Circuit;
use qoracle::RuleBasedOptimizer;
use std::time::{Duration, Instant};

/// Runs POPQC with the rule-based fixpoint oracle on a pool of the given
/// width, returning the optimized circuit and stats.
pub(crate) fn run_popqc(c: &Circuit, omega: usize, threads: usize) -> (Circuit, PopqcStats) {
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(omega);
    pool(threads).install(|| popqc_core::optimize_circuit(c, &oracle, &cfg))
}

/// Runs the whole-circuit VOQC-profile baseline with a cooperative timeout.
/// Returns `(output, elapsed, timed_out)`.
pub(crate) fn run_baseline(c: &Circuit, timeout: Duration) -> (Circuit, Duration, bool) {
    let deadline = Instant::now() + timeout;
    let baseline = RuleBasedOptimizer::voqc_baseline_with_deadline(Some(deadline));
    let t0 = Instant::now();
    let out = baseline.optimize_circuit(c);
    let elapsed = t0.elapsed();
    (out, elapsed, elapsed >= timeout)
}

/// Runs everything in paper order.
pub fn all(opts: &Opts) {
    table1(opts);
    table2(opts);
    table3(opts);
    table4(opts);
    fig3(opts);
    fig4(opts);
    fig5(opts);
    fig6(opts);
    fig7(opts);
    fig8(opts);
    fig9(opts);
    ablation(opts);
}

pub(crate) fn speedup_string(base: Duration, base_timed_out: bool, ours: Duration) -> String {
    let ratio = base.as_secs_f64() / ours.as_secs_f64().max(1e-9);
    if base_timed_out {
        format!("≥{ratio:.1}")
    } else {
        format!("{ratio:.1}")
    }
}
