//! Figures 3–9 of the paper (including the appendix figures).

use super::run_popqc;
use crate::harness::{
    dump_json, extreme_instances, fmt_pct, fmt_secs, instances, print_table, Opts,
};
use popqc_core::PopqcConfig;
use qcir::Circuit;
use qoracle::{GateCount, LayerSearchOracle, MixedDepthGates};
use serde_json::json;
use std::time::Duration;

/// Best-of-3 timing for scaling measurements (single runs are too noisy for
/// speedup ratios).
fn timed_popqc(c: &Circuit, omega: usize, threads: usize) -> Duration {
    (0..3)
        .map(|_| crate::harness::time(|| run_popqc(c, omega, threads)).1)
        .min()
        .unwrap()
}

/// Figure 3: self-speedup vs thread count on the largest instance of each
/// family.
pub fn fig3(opts: &Opts) {
    println!(
        "\n=== Figure 3: self-speedup vs #threads (largest instances, Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut headers: Vec<String> = vec!["benchmark".into(), "#gates".into()];
    for &t in &opts.threads {
        headers.push(format!("{t}t"));
    }
    for (_, large) in extreme_instances(opts) {
        let mut row = vec![
            large.family.name().to_string(),
            large.circuit.len().to_string(),
        ];
        let base = timed_popqc(&large.circuit, opts.omega, 1);
        let mut series = Vec::new();
        for &t in &opts.threads {
            let dt = if t == 1 {
                base
            } else {
                timed_popqc(&large.circuit, opts.omega, t)
            };
            let sp = base.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            row.push(format!("{sp:.2}"));
            series.push(json!({"threads": t, "speedup": sp, "seconds": dt.as_secs_f64()}));
        }
        records.push(
            json!({"family": large.family.name(), "gates": large.circuit.len(), "series": series}),
        );
        rows.push(row);
    }
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hdr, &rows);
    dump_json(opts, "fig3", &json!({ "rows": records }));
}

/// Figure 4: number of rounds, smallest vs largest instance per family.
pub fn fig4(opts: &Opts) {
    println!(
        "\n=== Figure 4: #rounds, smallest vs largest instance (Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (small, large) in extreme_instances(opts) {
        let (_, s_stats) = run_popqc(&small.circuit, opts.omega, opts.max_threads());
        let (_, l_stats) = run_popqc(&large.circuit, opts.omega, opts.max_threads());
        rows.push(vec![
            small.family.name().to_string(),
            format!("{} ({}g)", s_stats.rounds, small.circuit.len()),
            format!("{} ({}g)", l_stats.rounds, large.circuit.len()),
        ]);
        records.push(json!({
            "family": small.family.name(),
            "small": {"gates": small.circuit.len(), "rounds": s_stats.rounds},
            "large": {"gates": large.circuit.len(), "rounds": l_stats.rounds},
        }));
    }
    print_table(
        &["benchmark", "rounds (smallest)", "rounds (largest)"],
        &rows,
    );
    dump_json(opts, "fig4", &json!({ "rows": records }));
}

/// Figure 5: self-speedup at the maximum thread count vs circuit size, one
/// point per instance.
pub fn fig5(opts: &Opts) {
    let t = opts.max_threads();
    println!(
        "\n=== Figure 5: self-speedup ({t} threads) vs #gates (Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for inst in instances(opts) {
        let t1 = timed_popqc(&inst.circuit, opts.omega, 1);
        let tp = timed_popqc(&inst.circuit, opts.omega, t);
        let sp = t1.as_secs_f64() / tp.as_secs_f64().max(1e-9);
        rows.push(vec![
            inst.label(),
            inst.circuit.len().to_string(),
            format!("{sp:.2}"),
        ]);
        records.push(json!({
            "family": inst.family.name(),
            "qubits": inst.qubits,
            "gates": inst.circuit.len(),
            "speedup": sp,
        }));
    }
    print_table(&["instance", "#gates", "self-speedup"], &rows);
    dump_json(opts, "fig5", &json!({ "rows": records, "threads": t }));
}

/// Figure 6: layer-granularity POPQC with the search oracle — gate-count
/// objective vs the mixed `10·depth + gates` objective.
pub fn fig6(opts: &Opts) {
    let omega = 20; // layers (the paper uses Ω=100 at its larger scale)
    let budget = 300;
    println!(
        "\n=== Figure 6: search oracle, gate cost vs mixed cost (layer mode, Ω={omega} layers) ==="
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for family in benchgen::Family::PAPER {
        // Average over the two smallest instances (search oracles are slow —
        // that asymmetry is the point of Section 7.8).
        let mut acc = [[0.0f64; 2]; 2]; // [arm][gate_red, depth_red]
        let mut count = 0u32;
        for qubits in &family.ladder(opts.scale)[..2] {
            let c = family.generate(*qubits, opts.seed);
            let lc = c.layered();
            let cfg = PopqcConfig::with_omega(omega);
            let gate_arm = LayerSearchOracle::new(GateCount, budget, c.num_qubits);
            let (out_g, _) = crate::harness::pool(opts.max_threads())
                .install(|| popqc_core::optimize_layered(&lc, &gate_arm, &cfg));
            let mixed_arm =
                LayerSearchOracle::new(MixedDepthGates::default(), budget, c.num_qubits);
            let (out_m, _) = crate::harness::pool(opts.max_threads())
                .install(|| popqc_core::optimize_layered(&lc, &mixed_arm, &cfg));
            let gates0 = lc.gate_count() as f64;
            let depth0 = lc.depth() as f64;
            acc[0][0] += 1.0 - out_g.gate_count() as f64 / gates0;
            acc[0][1] += 1.0 - out_g.to_circuit().depth() as f64 / depth0;
            acc[1][0] += 1.0 - out_m.gate_count() as f64 / gates0;
            acc[1][1] += 1.0 - out_m.to_circuit().depth() as f64 / depth0;
            count += 1;
        }
        let avg = |a: f64| a / count as f64;
        rows.push(vec![
            family.name().to_string(),
            fmt_pct(avg(acc[0][0])),
            fmt_pct(avg(acc[0][1])),
            fmt_pct(avg(acc[1][0])),
            fmt_pct(avg(acc[1][1])),
        ]);
        records.push(json!({
            "family": family.name(),
            "gate_cost": {"gate_reduction": avg(acc[0][0]), "depth_reduction": avg(acc[0][1])},
            "mixed_cost": {"gate_reduction": avg(acc[1][0]), "depth_reduction": avg(acc[1][1])},
        }));
    }
    print_table(
        &[
            "benchmark",
            "gate-cost: gates",
            "gate-cost: depth",
            "mixed: gates",
            "mixed: depth",
        ],
        &rows,
    );
    dump_json(opts, "fig6", &json!({ "rows": records }));
}

/// Figure 7 (A.1): 1-thread work and oracle-call counts vs circuit size.
pub fn fig7(opts: &Opts) {
    println!(
        "\n=== Figure 7 (A.1): work and #oracle calls vs #gates (1 thread, Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut sum_calls_per_gate = 0.0;
    let mut count = 0u32;
    for inst in instances(opts) {
        let ((_, stats), dt) = crate::harness::time(|| run_popqc(&inst.circuit, opts.omega, 1));
        let n = inst.circuit.len() as f64;
        sum_calls_per_gate += stats.oracle_calls as f64 / n;
        count += 1;
        rows.push(vec![
            inst.label(),
            inst.circuit.len().to_string(),
            fmt_secs(dt),
            stats.oracle_calls.to_string(),
            format!("{:.4}", stats.oracle_calls as f64 / n),
            format!("{:.2}", dt.as_secs_f64() * 1e6 / n),
        ]);
        records.push(json!({
            "family": inst.family.name(),
            "qubits": inst.qubits,
            "gates": inst.circuit.len(),
            "seconds": dt.as_secs_f64(),
            "oracle_calls": stats.oracle_calls,
        }));
    }
    print_table(
        &[
            "instance",
            "#gates",
            "time(s)",
            "#calls",
            "calls/gate",
            "µs/gate",
        ],
        &rows,
    );
    println!(
        "average oracle calls per gate: {:.4} (paper's fit: 0.02·n; linearity is the claim)",
        sum_calls_per_gate / count as f64
    );
    dump_json(opts, "fig7", &json!({ "rows": records }));
}

/// Figure 8 (A.2): fraction of run time spent inside the oracle.
pub fn fig8(opts: &Opts) {
    println!(
        "\n=== Figure 8 (A.2): fraction of time in the oracle (1 thread, Ω={}) ===",
        opts.omega
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for inst in instances(opts) {
        let (_, stats) = run_popqc(&inst.circuit, opts.omega, 1);
        let frac = stats.oracle_nanos as f64 / stats.total_nanos.max(1) as f64;
        rows.push(vec![
            inst.label(),
            inst.circuit.len().to_string(),
            fmt_pct(frac),
        ]);
        records.push(json!({
            "family": inst.family.name(),
            "qubits": inst.qubits,
            "gates": inst.circuit.len(),
            "oracle_fraction": frac,
        }));
    }
    print_table(&["instance", "#gates", "time in oracle"], &rows);
    dump_json(opts, "fig8", &json!({ "rows": records }));
}

/// Figure 9 (A.3): quality and run time as Ω sweeps 50…800.
pub fn fig9(opts: &Opts) {
    let omegas = [50usize, 100, 200, 400, 800];
    println!("\n=== Figure 9 (A.3): impact of Ω (default marked *) ===");
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &omega in &omegas {
        let mut red = 0.0;
        let mut secs = 0.0;
        let mut count = 0u32;
        for family in benchgen::Family::PAPER {
            // Mid-size instance (second rung of the ladder).
            let qubits = family.ladder(opts.scale)[1];
            let c = family.generate(qubits, opts.seed);
            let ((_, stats), dt) =
                crate::harness::time(|| run_popqc(&c, omega, opts.max_threads()));
            red += stats.reduction();
            secs += dt.as_secs_f64();
            count += 1;
        }
        let marker = if omega == 200 { "*" } else { "" };
        rows.push(vec![
            format!("{omega}{marker}"),
            fmt_pct(red / count as f64),
            format!("{:.3}", secs / count as f64),
        ]);
        records.push(json!({
            "omega": omega,
            "avg_reduction": red / count as f64,
            "avg_seconds": secs / count as f64,
        }));
    }
    print_table(&["Ω", "avg reduction", "avg time(s)"], &rows);
    dump_json(opts, "fig9", &json!({ "rows": records }));
}
