//! Shared experiment plumbing: options, instances, pools, timing, tables.

use benchgen::Family;
use qcir::Circuit;
use std::time::{Duration, Instant};

/// Options shared by all experiments (parsed from the CLI).
#[derive(Clone, Debug)]
pub struct Opts {
    /// Size ladder shift: 0 = laptop scale, higher approaches paper scale.
    pub scale: u32,
    /// Generator seed.
    pub seed: u64,
    /// POPQC segment size Ω (paper default 200).
    pub omega: usize,
    /// Thread counts for scaling experiments (default `1..=ncores`).
    pub threads: Vec<usize>,
    /// Baseline timeout (the paper uses 24 h; we default to 120 s).
    pub timeout: Duration,
    /// Directory for JSON result dumps.
    pub out_dir: std::path::PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut threads: Vec<usize> = vec![1];
        let mut t = 2;
        while t <= ncores {
            threads.push(t);
            t *= 2;
        }
        if *threads.last().unwrap() != ncores {
            threads.push(ncores);
        }
        Opts {
            scale: 0,
            seed: 42,
            omega: 200,
            threads,
            timeout: Duration::from_secs(120),
            out_dir: std::path::PathBuf::from("target/experiments"),
        }
    }
}

impl Opts {
    /// Largest configured thread count.
    pub fn max_threads(&self) -> usize {
        *self.threads.iter().max().unwrap_or(&1)
    }
}

/// One benchmark instance.
pub struct Instance {
    /// The benchmark family.
    pub family: Family,
    /// Circuit width.
    pub qubits: u32,
    /// The generated circuit.
    pub circuit: Circuit,
}

impl Instance {
    /// `"BoolSat"`-style label.
    pub fn label(&self) -> String {
        format!("{}-{}", self.family.name(), self.qubits)
    }
}

/// The paper's full 8×4 instance grid at the given scale (the `Skewed`
/// executor workload is deliberately excluded — it has no paper
/// counterpart; the exec bench references it directly).
pub fn instances(opts: &Opts) -> Vec<Instance> {
    Family::PAPER
        .iter()
        .flat_map(|&family| {
            family
                .ladder(opts.scale)
                .into_iter()
                .map(move |qubits| (family, qubits))
        })
        .map(|(family, qubits)| Instance {
            family,
            qubits,
            circuit: family.generate(qubits, opts.seed),
        })
        .collect()
}

/// Smallest and largest instance per family (Figure 4's pairs).
pub fn extreme_instances(opts: &Opts) -> Vec<(Instance, Instance)> {
    Family::PAPER
        .iter()
        .map(|&family| {
            let ladder = family.ladder(opts.scale);
            let small = ladder[0];
            let large = ladder[3];
            (
                Instance {
                    family,
                    qubits: small,
                    circuit: family.generate(small, opts.seed),
                },
                Instance {
                    family,
                    qubits: large,
                    circuit: family.generate(large, opts.seed),
                },
            )
        })
        .collect()
}

/// Builds a Rayon pool of the given width.
pub fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// Wall-clock timing.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Fixed-width table printer. `widths` are minimum column widths; columns
/// are left-aligned except numeric-looking cells, which align right.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let w = widths.get(i).copied().unwrap_or(0);
            let numeric = cell
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '≥' || c == 'N');
            if numeric {
                s.push_str(&format!("{cell:>w$}"));
            } else {
                s.push_str(&format!("{cell:<w$}"));
            }
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        line(row.clone());
    }
}

/// Formats a duration in seconds with sensible precision.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.4}", s)
    } else if s < 1.0 {
        format!("{:.3}", s)
    } else {
        format!("{:.2}", s)
    }
}

/// Percent formatting.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Writes a JSON value under `out_dir/<name>.json`.
pub fn dump_json(opts: &Opts, name: &str, value: &serde_json::Value) {
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("warn: cannot create {}: {e}", opts.out_dir.display());
        return;
    }
    let path = opts.out_dir.join(format!("{name}.json"));
    match std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
        Ok(()) => println!("[results written to {}]", path.display()),
        Err(e) => eprintln!("warn: cannot write {}: {e}", path.display()),
    }
}
