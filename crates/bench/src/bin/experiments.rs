//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <table1|table2|table3|table4|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all>
//!             [--scale N] [--seed N] [--omega N] [--threads 1,2,4]
//!             [--timeout SECS] [--out DIR]
//! ```

use popqc_bench::harness::Opts;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|table4|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all> \
         [--scale N] [--seed N] [--omega N] [--threads 1,2,4] [--timeout SECS] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    let mut opts = Opts::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned().unwrap_or_default();
        match flag {
            "--scale" => opts.scale = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--omega" => opts.omega = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                opts.threads = value
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if opts.threads.is_empty() {
                    usage();
                }
            }
            "--timeout" => {
                opts.timeout = Duration::from_secs_f64(value.parse().unwrap_or_else(|_| usage()))
            }
            "--out" => opts.out_dir = value.clone().into(),
            _ => usage(),
        }
        i += 2;
    }

    println!(
        "POPQC experiments — scale {}, seed {}, Ω {}, threads {:?}, timeout {:?}",
        opts.scale, opts.seed, opts.omega, opts.threads, opts.timeout
    );

    use popqc_bench::experiments as e;
    match cmd.as_str() {
        "table1" => e::table1(&opts),
        "table2" => e::table2(&opts),
        "table3" => e::table3(&opts),
        "table4" => e::table4(&opts),
        "fig3" => e::fig3(&opts),
        "fig4" => e::fig4(&opts),
        "fig5" => e::fig5(&opts),
        "fig6" => e::fig6(&opts),
        "fig7" => e::fig7(&opts),
        "fig8" => e::fig8(&opts),
        "fig9" => e::fig9(&opts),
        "ablation" => e::ablation(&opts),
        "all" => e::all(&opts),
        _ => usage(),
    }
}
