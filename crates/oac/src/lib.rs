//! # oac — the sequential cut–optimize–meld–compress baseline
//!
//! A from-scratch implementation of the local optimizer of Arora et al.
//! ("Local optimization of quantum circuits", the paper's reference \[8\]),
//! which POPQC is compared against in Table 3. The algorithm:
//!
//! 1. **cut** the circuit into Ω-segments;
//! 2. **optimize** each segment with the oracle (sequentially);
//! 3. **meld** the seams: slide a 2Ω window across every segment boundary,
//!    re-optimizing sequentially left to right so improvements propagate
//!    into neighbouring segments;
//! 4. **compress** by left-justifying the circuit (closing the gaps that
//!    removals leave behind);
//! 5. repeat until a full pass changes nothing.
//!
//! Like the original, every phase rebuilds flat gate vectors, so the
//! per-iteration overhead is quadratic-ish in circuit size — exactly the
//! overhead POPQC's index tree avoids (Section 7.7 attributes POPQC's
//! advantage over OAC to this asymptotic gap).

use qcir::{Circuit, Gate};
use qoracle::SegmentOracle;
use std::time::Instant;

/// OAC parameters.
#[derive(Clone, Debug)]
pub struct OacConfig {
    /// Segment size Ω (Table 3 uses 400 for both OAC and POPQC).
    pub omega: usize,
    /// Safety cap on cut-meld-compress iterations.
    pub max_iterations: usize,
}

impl Default for OacConfig {
    fn default() -> Self {
        OacConfig {
            omega: 400,
            max_iterations: 64,
        }
    }
}

impl OacConfig {
    /// Config with the given Ω.
    pub fn with_omega(omega: usize) -> OacConfig {
        OacConfig {
            omega,
            ..Default::default()
        }
    }
}

/// Run statistics for an OAC invocation.
#[derive(Clone, Debug, Default)]
pub struct OacStats {
    /// Completed cut–meld–compress iterations.
    pub iterations: usize,
    /// Total oracle invocations across all phases.
    pub oracle_calls: u64,
    /// End-to-end wall-clock time.
    pub total_nanos: u64,
    /// Gate count before optimization.
    pub initial_gates: usize,
    /// Gate count after optimization.
    pub final_gates: usize,
}

impl OacStats {
    /// Gate reduction as a fraction of the input size.
    pub fn reduction(&self) -> f64 {
        if self.initial_gates == 0 {
            0.0
        } else {
            1.0 - self.final_gates as f64 / self.initial_gates as f64
        }
    }
}

/// Runs OAC to convergence. Sequential by construction (the meld phase is
/// inherently order-dependent, which is the paper's motivation for POPQC).
pub fn oac_optimize<O: SegmentOracle<Gate>>(
    c: &Circuit,
    oracle: &O,
    cfg: &OacConfig,
) -> (Circuit, OacStats) {
    assert!(cfg.omega >= 1, "Ω must be at least 1");
    let t0 = Instant::now();
    let mut stats = OacStats {
        initial_gates: c.len(),
        ..Default::default()
    };
    let mut gates = c.gates.clone();

    for _ in 0..cfg.max_iterations {
        let before = gates.clone();

        // Phase 1+2: cut into Ω-segments and optimize each.
        let mut next = Vec::with_capacity(gates.len());
        for chunk in gates.chunks(cfg.omega) {
            let opt = oracle.optimize(chunk, c.num_qubits);
            stats.oracle_calls += 1;
            if oracle.cost(&opt) < oracle.cost(chunk) {
                next.extend(opt);
            } else {
                next.extend_from_slice(chunk);
            }
        }
        gates = next;

        // Phase 3: meld across seams, left to right. Each window splice
        // rebuilds the tail — the quadratic overhead characteristic of OAC.
        let mut seam = cfg.omega;
        while seam < gates.len() {
            let lo = seam.saturating_sub(cfg.omega);
            let hi = (seam + cfg.omega).min(gates.len());
            let window = &gates[lo..hi];
            let opt = oracle.optimize(window, c.num_qubits);
            stats.oracle_calls += 1;
            if oracle.cost(&opt) < oracle.cost(window) {
                let removed = window.len() - opt.len();
                let mut spliced = Vec::with_capacity(gates.len() - removed);
                spliced.extend_from_slice(&gates[..lo]);
                spliced.extend(opt);
                spliced.extend_from_slice(&gates[hi..]);
                gates = spliced;
            }
            seam += cfg.omega;
        }

        // Phase 4: compress — close gaps by left-justifying.
        gates = Circuit {
            num_qubits: c.num_qubits,
            gates,
        }
        .left_justified()
        .gates;

        stats.iterations += 1;
        if gates == before {
            break;
        }
    }

    stats.final_gates = gates.len();
    stats.total_nanos = t0.elapsed().as_nanos() as u64;
    (
        Circuit {
            num_qubits: c.num_qubits,
            gates,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Angle;
    use qoracle::RuleBasedOptimizer;

    fn random_circuit(n: u32, len: usize, seed: u64) -> Circuit {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut c = Circuit::new(n);
        for _ in 0..len {
            let r = next();
            let q = (r % n as u64) as u32;
            match (r >> 8) % 4 {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.x(q);
                }
                2 => {
                    c.rz(q, Angle::pi_frac(((r >> 16) % 16) as i64, 8));
                }
                _ => {
                    let mut t = ((r >> 16) % n as u64) as u32;
                    if t == q {
                        t = (t + 1) % n;
                    }
                    c.cnot(q, t);
                }
            }
        }
        c
    }

    #[test]
    fn reduces_and_preserves_semantics() {
        let oracle = RuleBasedOptimizer::oracle();
        for seed in 0..4 {
            let c = random_circuit(5, 250, seed * 19 + 2);
            let (opt, stats) = oac_optimize(&c, &oracle, &OacConfig::with_omega(16));
            assert!(opt.len() < c.len(), "seed {seed}: no reduction");
            assert_eq!(stats.final_gates, opt.len());
            assert!(stats.iterations >= 1);
            assert!(
                qsim::circuits_equivalent(&c, &opt, 3, seed ^ 0xbeef),
                "seed {seed}: OAC changed semantics"
            );
        }
    }

    #[test]
    fn converges_to_a_fixpoint() {
        let oracle = RuleBasedOptimizer::oracle();
        let c = random_circuit(4, 200, 11);
        let cfg = OacConfig::with_omega(12);
        let (once, _) = oac_optimize(&c, &oracle, &cfg);
        let (twice, stats2) = oac_optimize(&once, &oracle, &cfg);
        assert_eq!(once, twice, "OAC output should be a fixpoint");
        // A fixpoint rerun converges in one verification iteration.
        assert_eq!(stats2.iterations, 1);
    }

    #[test]
    fn quality_close_to_popqc_with_same_oracle() {
        // Section 7.7: with the same oracle and Ω, OAC and POPQC land within
        // a whisker of each other on quality.
        let oracle = RuleBasedOptimizer::oracle();
        for seed in [5u64, 23] {
            let c = random_circuit(5, 300, seed);
            let (oac_out, _) = oac_optimize(&c, &oracle, &OacConfig::with_omega(20));
            let (pq_out, _) =
                popqc_core::optimize_circuit(&c, &oracle, &popqc_core::PopqcConfig::with_omega(20));
            let a = oac_out.len() as f64;
            let b = pq_out.len() as f64;
            let rel = (a - b).abs() / a.max(b).max(1.0);
            assert!(
                rel < 0.1,
                "seed {seed}: OAC {a} vs POPQC {b} diverge by {rel:.2}"
            );
        }
    }

    #[test]
    fn empty_circuit() {
        let oracle = RuleBasedOptimizer::oracle();
        let c = Circuit::new(2);
        let (opt, stats) = oac_optimize(&c, &oracle, &OacConfig::default());
        assert!(opt.is_empty());
        assert_eq!(stats.oracle_calls, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let oracle = RuleBasedOptimizer::oracle();
        let c = random_circuit(4, 150, 3);
        let cfg = OacConfig {
            omega: 10,
            max_iterations: 1,
        };
        let (_, stats) = oac_optimize(&c, &oracle, &cfg);
        assert_eq!(stats.iterations, 1);
    }
}
