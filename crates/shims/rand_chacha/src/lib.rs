//! A std-only stand-in for [rand_chacha](https://docs.rs/rand_chacha)'s
//! `ChaCha8Rng` (offline build; the real crate cannot be fetched). The
//! workspace uses `ChaCha8Rng` purely as a *deterministic, seedable* stream —
//! no cryptographic property is relied on — so this shim substitutes
//! xoshiro256++ seeded via SplitMix64. Streams differ numerically from real
//! ChaCha8, which only shifts which concrete random circuits the generators
//! emit, not any test or experiment semantics.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG under the `ChaCha8Rng` name (xoshiro256++).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: i64 = rng.gen_range(-4i64..4);
        assert!((-4..4).contains(&v));
        let _: bool = rng.gen();
    }
}
