//! A std-only stand-in for the subset of
//! [criterion](https://docs.rs/criterion) this workspace uses. The build
//! environment is offline, so the real crate cannot be fetched.
//!
//! The harness is real but simple: each benchmark warms up for the
//! configured warm-up time, then runs `sample_size` samples (each sample
//! sized to fill `measurement_time / sample_size`) and prints the minimum,
//! median, and mean per-iteration wall time plus derived throughput. There
//! are no statistical regressions reports, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; printed as elements/sec or bytes/sec.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing for `iter_batched`; the shim treats all variants alike.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `--test` mode: run each benchmark once to prove it works, skipping
    /// warm-up and sampling (mirrors real criterion's smoke-test flag).
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let settings = self.settings;
        run_benchmark(name, settings, None, &mut f);
    }

    /// Entry point used by the expansion of [`criterion_main!`]. Honors the
    /// `--test` CLI flag (smoke mode: each benchmark runs exactly once), as
    /// real criterion does under `cargo bench -- --test`.
    pub fn configure_from_args(mut self) -> Criterion {
        if std::env::args().any(|a| a == "--test") {
            self.settings.test_mode = true;
        }
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.settings, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.settings, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Handed to benchmark closures; measures the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(t0.elapsed());
    }

    pub fn iter_batched<S, R, FS: FnMut() -> S, FR: FnMut(S) -> R>(
        &mut self,
        mut setup: FS,
        mut routine: FR,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.samples.push(total);
    }
}

fn run_benchmark(
    label: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if settings.test_mode {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        let t0 = Instant::now();
        f(&mut b);
        println!(
            "{label:<50} ok ({:.3} s, test mode, 1 sample)",
            t0.elapsed().as_secs_f64()
        );
        return;
    }
    // Warm-up: run single-iteration samples until the warm-up time elapses,
    // and estimate the per-iteration cost from them.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    while warm_start.elapsed() < settings.warm_up_time {
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let warm_elapsed = warm_start.elapsed();
    let per_iter = warm_elapsed
        .checked_div(warm_iters.max(1) as u32)
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));

    // Size each sample so all samples together fill the measurement time.
    let budget_per_sample = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters = (budget_per_sample / per_iter.as_secs_f64()).ceil().max(1.0) as u64;

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(settings.sample_size),
    };
    for _ in 0..settings.sample_size {
        f(&mut b);
    }

    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let fmt_time = |s: f64| {
        if s < 1e-6 {
            format!("{:.1} ns", s * 1e9)
        } else if s < 1e-3 {
            format!("{:.2} µs", s * 1e6)
        } else if s < 1.0 {
            format!("{:.2} ms", s * 1e3)
        } else {
            format!("{:.3} s", s)
        }
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} min {}  med {}  mean {}  ({} samples x {} iters){tp}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        iters,
    );
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
        assert!(count > 0);
    }
}
