//! A std-only stand-in for the subset of [rand 0.8](https://docs.rs/rand)
//! this workspace uses: the `RngCore`/`Rng`/`SeedableRng` traits with
//! `gen_range` over primitive integer ranges and `gen::<bool>()`/`gen::<f64>()`.
//! The build environment is offline, so the real crate cannot be fetched.
//!
//! Generators implementing [`RngCore`] (see the sibling `rand_chacha` shim)
//! remain fully deterministic in their seed, which is the only property the
//! workspace's benchmark generators rely on.

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0u32..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&v));
            let u: usize = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
        }
    }

    #[test]
    fn standard_samples() {
        let mut rng = Counter(7);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let _: bool = rng.gen();
    }
}
