//! A std-only stand-in for the subset of
//! [proptest](https://docs.rs/proptest) this workspace uses. The build
//! environment is offline, so the real crate cannot be fetched.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `#[test] fn name(x in strategy, ...) { ... }` items;
//! * [`Strategy`] with `prop_map`, implemented for primitive integer ranges
//!   and tuples (arity 2–4);
//! * `prop::collection::vec`, `prop::collection::btree_map`,
//!   `prop::option::of`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic, no `PROPTEST_*` env handling) and failing inputs are
//! reported but **not shrunk** — the printed counterexample is the raw
//! generated value.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::ops::Range;

/// The per-case random source handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }

    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// `ValueTree`: strategies produce final values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        loop {
            let v = rng.rng().gen_range(lo..hi);
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `prop::…` strategy constructors.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::BTreeMap;
        use std::ops::Range;

        /// Vectors with a length drawn from `len` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.rng().gen_range(self.len.start..self.len.end)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// BTree maps with up to `size` entries (duplicate keys collapse,
        /// matching real proptest's behaviour of treating `size` as an upper
        /// bound).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V> {
            BTreeMapStrategy { key, value, size }
        }

        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
                let n = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.rng().gen_range(self.size.start..self.size.end)
                };
                (0..n)
                    .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                    .collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// `None` roughly one time in four, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.rng().gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Derives the per-test base seed. Deterministic across runs and platforms.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Everything the `proptest!` expansion and test bodies need in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The test-suite macro: expands each item into a `#[test]` that runs
/// `cases` generated inputs through the body, reporting the failing input
/// (unshrunk) on panic.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    stringify!($name),
                    &($cfg),
                    |__pt_rng, __pt_inputs| {
                        let ($($arg,)+) = (
                            $($crate::Strategy::generate(&($strat), __pt_rng),)+
                        );
                        __pt_inputs.push_str(&format!(
                            concat!($(stringify!($arg), " = {:?}; ",)+),
                            $(&$arg,)+
                        ));
                        $body
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Drives one property: generates `cfg.cases` inputs and reports the case
/// index, seed, and inputs of the first failure. The closure receives a
/// string buffer to record the generated inputs into before running the
/// body, so the failure report shows the actual counterexample.
pub fn run_proptest(
    name: &str,
    cfg: &ProptestConfig,
    mut case_fn: impl FnMut(&mut TestRng, &mut String),
) {
    for case in 0..cfg.cases {
        let seed = seed_for(name, case);
        let mut rng = TestRng::new(seed);
        let mut inputs = String::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case_fn(&mut rng, &mut inputs)
        }));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!(
                "proptest `{name}` failed at case {case} (seed {seed:#x})\n\
                 inputs: {inputs}\n{msg}\n\
                 (no shrinking in this shim; inputs are deterministic in the seed)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(0u32..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        #[test]
        fn maps_and_tuples(v in small_vec().prop_map(|v| v.len()), t in (0u8..4, 0u32..7)) {
            prop_assert!(v < 5);
            prop_assert!(t.0 < 4 && t.1 < 7);
        }

        #[test]
        fn collections(m in prop::collection::btree_map(0usize..20, prop::option::of(0u32..3), 0..8)) {
            prop_assert!(m.len() < 8);
            for k in m.keys() {
                prop_assert!(*k < 20);
            }
        }
    }

    #[test]
    fn failure_reports_case() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(
                "always_fails",
                &ProptestConfig::with_cases(3),
                |_rng, _inputs| {
                    panic!("boom");
                },
            );
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }
}
