//! A std-only stand-in for the subset of
//! [serde_json](https://docs.rs/serde_json) this workspace uses: the
//! [`Value`] tree, the [`json!`] constructor macro, serialization
//! ([`to_string`], [`to_string_pretty`]), and a strict parser
//! ([`from_str`]) sufficient for reading back this shim's own output.
//! The build environment is offline, so the real crate cannot be fetched.
//!
//! There is deliberately no serde data-model layer — the workspace only
//! builds `Value` trees explicitly (experiment dumps, service reports).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer-valued numbers round-trip exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            Value::Number(Number::U(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(v)) => Some(*v),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::I(v)) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I(v as i64))
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Value {
        Value::Object(iter.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Value {
        Value::Object(m.into_iter().collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialization/parsing error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Compact serialization. Infallible for every constructible [`Value`].
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    Ok(out)
}

/// Two-space-indented pretty serialization.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            msg: format!("{} at byte {}", msg.into(), self.pos),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    Error {
                                        msg: "truncated \\u escape".into(),
                                    }
                                })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error {
                                    msg: "non-utf8 \\u escape".into(),
                                })?,
                                16,
                            )
                            .map_err(|_| Error {
                                msg: "bad \\u escape".into(),
                            })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error {
                        msg: "invalid utf-8".into(),
                    })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::F(f))),
            Err(_) => self.err(format!("bad number `{text}`")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(src: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Builds a [`Value`] from JSON-looking syntax (object/array literals, `null`,
/// and arbitrary Rust expressions convertible via `Into<Value>`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut array: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@array array () ($($tt)*));
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object object () ($($tt)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]; do not use directly.
#[macro_export]
macro_rules! json_internal {
    // ---- objects ------------------------------------------------------
    // Finished.
    (@object $object:ident () ()) => {};
    // Entry whose value is a nested object literal.
    (@object $object:ident ($($key:tt)+) (: { $($map:tt)* } , $($rest:tt)*)) => {
        $object.push((($($key)+).into(), $crate::json!({ $($map)* })));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: { $($map:tt)* })) => {
        $object.push((($($key)+).into(), $crate::json!({ $($map)* })));
    };
    // Entry whose value is a nested array literal.
    (@object $object:ident ($($key:tt)+) (: [ $($arr:tt)* ] , $($rest:tt)*)) => {
        $object.push((($($key)+).into(), $crate::json!([ $($arr)* ])));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: [ $($arr:tt)* ])) => {
        $object.push((($($key)+).into(), $crate::json!([ $($arr)* ])));
    };
    // Entry whose value is `null`.
    (@object $object:ident ($($key:tt)+) (: null , $($rest:tt)*)) => {
        $object.push((($($key)+).into(), $crate::Value::Null));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: null)) => {
        $object.push((($($key)+).into(), $crate::Value::Null));
    };
    // Entry whose value is a Rust expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.push((($($key)+).into(), $crate::Value::from($value)));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.push((($($key)+).into(), $crate::Value::from($value)));
    };
    // Accumulate key tokens until the ':'.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
    // ---- arrays -------------------------------------------------------
    (@array $array:ident () ()) => {};
    (@array $array:ident () ({ $($map:tt)* } , $($rest:tt)*)) => {
        $array.push($crate::json!({ $($map)* }));
        $crate::json_internal!(@array $array () ($($rest)*));
    };
    (@array $array:ident () ({ $($map:tt)* })) => {
        $array.push($crate::json!({ $($map)* }));
    };
    (@array $array:ident () (null , $($rest:tt)*)) => {
        $array.push($crate::Value::Null);
        $crate::json_internal!(@array $array () ($($rest)*));
    };
    (@array $array:ident () (null)) => {
        $array.push($crate::Value::Null);
    };
    (@array $array:ident () ($value:expr , $($rest:tt)*)) => {
        $array.push($crate::Value::from($value));
        $crate::json_internal!(@array $array () ($($rest)*));
    };
    (@array $array:ident () ($value:expr)) => {
        $array.push($crate::Value::from($value));
    };
}

#[cfg(test)]
// `json!` expands to init-then-push by design; the lint skips external-macro
// call sites but not this crate's own tests.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_trees() {
        let rows = vec![json!({"a": 1, "b": 2.5})];
        let v = json!({
            "name": "popqc",
            "count": 3usize,
            "nested": {"x": true, "y": null},
            "rows": rows,
            "list": [1, 2, 3],
        });
        assert_eq!(v.get("name").unwrap().as_str(), Some("popqc"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert!(v.get("nested").unwrap().get("y").unwrap().is_null());
        assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n",
            "neg": -42,
            "big": 18446744073709551615u64,
            "f": 0.125,
            "intish": 3.0,
            "arr": [null, true, false, {"k": "v"}],
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v, "mismatch for {text}");
        }
    }

    #[test]
    fn conditional_values_work() {
        let missing = true;
        let v = json!({
            "x": if missing { Value::Null } else { json!(1.5) },
        });
        assert!(v.get("x").unwrap().is_null());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("{} extra").is_err());
    }
}
