//! A std-only stand-in for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses. The build environment is offline, so the real crate cannot
//! be fetched; this shim keeps the same names and semantics for:
//!
//! * `par_iter()` / `into_par_iter()` / `par_chunks_mut()` with the adapter
//!   chains the workspace uses (`map`, `zip`, `enumerate`, `filter_map`,
//!   `for_each`, `collect`);
//! * `ThreadPoolBuilder` / `ThreadPool::install` / `current_num_threads`;
//! * `join`.
//!
//! Execution is a thin facade over the `popqc-exec` work-stealing executor
//! (`qexec`): every closure-applying adapter forwards to
//! [`qexec::par_map_vec`], which splits the items recursively down to a
//! tunable grain on a **persistent global worker pool** — no per-call
//! thread spawning, and irregular per-item costs rebalance across workers
//! via stealing instead of serializing behind one contiguous chunk.
//! Results are bit-identical to sequential execution (order is preserved
//! by index) for every pool width and steal schedule.
//!
//! Like real rayon, a [`ThreadPool`] scopes a parallelism *width* rather
//! than owning threads of its own: [`ThreadPool::install`] pins
//! [`current_num_threads`] for the closure's duration and the closure's
//! parallel operations run on the shared qexec pool at that width. The
//! effective width follows the workspace-wide precedence documented at
//! [`qexec::resolve_threads`]: `POPQC_NUM_THREADS` > installed pool width
//! > available parallelism.

/// Number of threads parallel operations on this thread will use
/// (`POPQC_NUM_THREADS` > installed pool width > available parallelism).
pub fn current_num_threads() -> usize {
    qexec::current_width()
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => qexec::resolve_threads(None),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes a parallelism width on the shared qexec executor:
/// [`ThreadPool::install`] pins [`current_num_threads`] for the closure's
/// duration, and the closure's parallel operations run on the global
/// work-stealing pool at that width (which grows its persistent workers to
/// match; it never spawns per-operation threads).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width installed as the parallelism level.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        qexec::with_width(self.num_threads, f)
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Applies `f` to every item, in parallel, preserving order.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    qexec::par_map_vec(items, f)
}

/// An eager parallel iterator: closure-applying adapters execute immediately
/// (in parallel); structural adapters just reshape the buffered items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_parallel(self.items, f),
        }
    }

    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_parallel(self.items, f).into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_parallel(self.items, f);
    }

    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
/// Forwards to [`qexec::join`]: the second closure is made stealable on
/// the shared pool while the caller runs the first, and a panic in either
/// (including a stolen one) is re-raised on the caller with its original
/// payload.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    qexec::join(a, b)
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    /// `POPQC_NUM_THREADS` deliberately outranks an installed width, so
    /// exact-width assertions cannot hold when the suite runs with the
    /// variable set — those tests skip instead of failing.
    fn env_pins_width() -> bool {
        if std::env::var_os("POPQC_NUM_THREADS").is_some() {
            eprintln!("skipping width-pinned assertions: POPQC_NUM_THREADS is set");
            return true;
        }
        false
    }

    #[test]
    fn chunks_mut_and_install() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        if !env_pins_width() {
            assert_eq!(pool.install(current_num_threads), 3);
        }
        let mut v = vec![1u32; 4096];
        v.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[4095], 63);
    }

    #[test]
    fn filter_map_and_zip() {
        let a = [1u32, 2, 3, 4];
        let b = [10u32, 20, 30, 40];
        let sums: Vec<u32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(sums, vec![11, 22, 33, 44]);
        let odd: Vec<u32> = a
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd, vec![1, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Order preservation under stealing: whatever the steal schedule,
        /// `par_iter().map().collect()` must equal the sequential map.
        /// Width 4 with grain 1 maximizes task count (and therefore steal
        /// opportunities) even on a single-core host.
        #[test]
        fn par_map_matches_sequential(xs in prop::collection::vec(0u64..1_000_000, 0..600)) {
            // Drop-guard so a failing case cannot leak grain=1 into the
            // rest of the binary.
            struct GrainGuard;
            impl Drop for GrainGuard {
                fn drop(&mut self) {
                    qexec::set_grain(0);
                }
            }
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            qexec::set_grain(1);
            let _restore = GrainGuard;
            let par: Vec<u64> = pool.install(|| xs.par_iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect());
            let seq: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
            prop_assert_eq!(par, seq);
        }
    }

    /// The acceptance property for the executor rewire: consecutive
    /// parallel operations reuse the same persistent pool threads. The
    /// old shim spawned fresh scoped threads per call, so the set of
    /// observed worker thread ids grew with every operation; on the qexec
    /// pool it is bounded by the pool size no matter how many operations
    /// run.
    #[test]
    fn consecutive_ops_reuse_pool_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..16 {
            pool.install(|| {
                (0..256usize).into_par_iter().for_each(|_| {
                    // Only count pool workers (by their `qexec-N` thread
                    // name): the caller — and any concurrent test's
                    // thread helping while it waits — may legally
                    // execute leaves too, and those ids are not the
                    // pool's.
                    let on_pool_worker = std::thread::current()
                        .name()
                        .is_some_and(|n| n.starts_with("qexec-"));
                    if on_pool_worker {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    }
                });
            });
        }
        let distinct = seen.lock().unwrap().len();
        // Every pool-worker id must belong to the one persistent pool,
        // whose total thread count qexec reports (other tests in this
        // process may have grown it beyond our 4). Per-call thread
        // spawning would mint fresh ids every operation, far exceeding
        // the pool's census.
        let pool_threads = qexec::stats().workers as usize;
        assert!(
            distinct <= pool_threads,
            "expected ids within the {pool_threads}-thread persistent pool, \
             saw {distinct} distinct thread ids"
        );
    }
}
