//! A std-only stand-in for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses. The build environment is offline, so the real crate cannot
//! be fetched; this shim keeps the same names and semantics for:
//!
//! * `par_iter()` / `into_par_iter()` / `par_chunks_mut()` with the adapter
//!   chains the workspace uses (`map`, `zip`, `enumerate`, `filter_map`,
//!   `for_each`, `collect`);
//! * `ThreadPoolBuilder` / `ThreadPool::install` / `current_num_threads`.
//!
//! Execution is genuinely parallel: every closure-applying adapter splits its
//! items into one contiguous chunk per available thread and runs the chunks
//! under `std::thread::scope`, preserving item order. "Available threads" is
//! the installed pool width (a thread-local set by [`ThreadPool::install`]),
//! defaulting to `std::thread::available_parallelism()`. Unlike real rayon
//! there is no work-stealing, so irregular workloads balance worse — but
//! results are bit-identical and the scaling experiments still scale.

use std::cell::Cell;

thread_local! {
    /// Width installed by [`ThreadPool::install`] for the current thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes a parallelism width rather than owning threads:
/// [`ThreadPool::install`] pins [`current_num_threads`] for the closure's
/// duration, and parallel operations spawn scoped threads on demand.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width installed as the parallelism level.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Applies `f` to every item, in parallel, preserving order.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// An eager parallel iterator: closure-applying adapters execute immediately
/// (in parallel); structural adapters just reshape the buffered items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_parallel(self.items, f),
        }
    }

    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_parallel(self.items, f).into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_parallel(self.items, f);
    }

    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn chunks_mut_and_install() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let mut v = vec![1u32; 4096];
        v.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[4095], 63);
    }

    #[test]
    fn filter_map_and_zip() {
        let a = [1u32, 2, 3, 4];
        let b = [10u32, 20, 30, 40];
        let sums: Vec<u32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(sums, vec![11, 22, 33, 44]);
        let odd: Vec<u32> = a
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd, vec![1, 3]);
    }
}
