//! Quantum square root via reversible Newton iteration (NWQBench-style):
//! repeated adder/subtractor/comparator arithmetic over three registers,
//! interleaved with the long single-qubit rotation runs that make this
//! family unusually sensitive to gate ordering (paper §A.4).

use super::{grid_angle, GRID_DEN};
use crate::builders::{cuccaro_add, cuccaro_sub, toffoli};
use qcir::{Angle, Circuit, Qubit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 11, "Sqrt needs at least 11 qubits");
    // Layout: x | guess | temp registers of nb bits each, plus carry-in,
    // carry-out ancillas.
    let nb = ((qubits - 2) / 3) as usize;
    let x: Vec<Qubit> = (0..nb as u32).collect();
    let g: Vec<Qubit> = (nb as u32..2 * nb as u32).collect();
    let t: Vec<Qubit> = (2 * nb as u32..3 * nb as u32).collect();
    let cin: Qubit = 3 * nb as u32;
    let cout: Qubit = 3 * nb as u32 + 1;

    let iterations = 3 + nb;
    let mut c = Circuit::new(qubits);
    // Input loading.
    for &q in &x {
        if rng.gen() {
            c.x(q);
        }
    }
    for &q in &g {
        c.h(q);
    }
    for _ in 0..iterations {
        // temp := temp + guess ; temp := temp − x  (Newton residual).
        cuccaro_add(&mut c, &g, &t, cin, cout);
        cuccaro_sub(&mut c, &x, &t, cin, cout);
        // Comparator: AND-chain of temp bits onto the carry-out flag.
        toffoli(&mut c, t[0], t[1 % nb], cout);
        for &tq in t.iter().take(nb).skip(2) {
            toffoli(&mut c, tq, cout, cin);
            toffoli(&mut c, tq, cout, cin);
        }
        // Conditional update of the guess.
        for (j, &gq) in g.iter().enumerate() {
            c.cnot(cout, gq);
            if j % 2 == 0 {
                c.cnot(t[j], gq);
            }
        }
        // The family's signature: long runs of consecutive single-qubit
        // gates (calibration-style rotation ladders) between iterations.
        for &q in g.iter().chain(&t) {
            c.rz(q, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            c.rz(q, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            if rng.gen_ratio(1, 3) {
                c.h(q);
                c.rz(q, Angle::pi_frac(grid_angle(rng), GRID_DEN));
                c.h(q);
            }
        }
        // Undo the residual so the next iteration starts clean.
        cuccaro_add(&mut c, &x, &t, cin, cout);
        cuccaro_sub(&mut c, &g, &t, cin, cout);
    }
    c
}
