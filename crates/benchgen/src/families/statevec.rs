//! State-vector preparation: a cascade of multiplexed rotations, one level
//! per qubit, with synthesis precision doubling per level. The per-level
//! cost `2^k · 2^k` reproduces the paper's ≈4× size growth per added qubit
//! (32 k gates at 5 qubits → 2.2 M at 8).

use crate::builders::multiplexed_rz;
use qcir::{Circuit, Qubit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 2, "StateVec needs at least 2 qubits");
    let n = qubits as usize;
    let mut c = Circuit::new(qubits);
    for k in 0..n {
        let controls: Vec<Qubit> = (0..k as u32).collect();
        let target = k as u32;
        // Precision synthesis: the level-k multiplexor is refined 2^k times
        // with progressively scaled angle patterns (mirroring fine-grained
        // rotation synthesis in real state-prep compilers). Every fourth
        // refinement switches the rotation axis (H conjugation on the
        // target), as real prep kernels alternate RY/RZ — so runs of four
        // refinements carry genuine fold-away redundancy while the axis
        // switches keep the whole level from collapsing outright.
        let refinements = 1usize << k;
        c.h(target);
        for r in 0..refinements {
            let den = 1i64 << 12;
            let angles: Vec<i64> = (0..1usize << k)
                .map(|_| {
                    if rng.gen_ratio(1, 4) {
                        0
                    } else {
                        rng.gen_range(-(den / 2)..den / 2) >> (r % 4)
                    }
                })
                .collect();
            multiplexed_rz(&mut c, &controls, target, &angles, den);
            if r % 4 == 3 {
                c.h(target);
            }
        }
        c.h(target);
    }
    c
}
