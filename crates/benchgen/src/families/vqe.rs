//! VQE: a hardware-efficient variational ansatz — alternating single-qubit
//! rotation frames and nearest-neighbour CNOT entangler rungs, with layer
//! count scaling quadratically in width (as the paper's instances do).

use super::{grid_angle, GRID_DEN};
use qcir::{Angle, Circuit};
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 4, "VQE needs at least 4 qubits");
    let n = qubits as usize;
    let layers = (3 * n * n / 5).max(4);
    let mut c = Circuit::new(qubits);
    for &q in (0..qubits).collect::<Vec<_>>().iter() {
        c.h(q);
    }
    for layer in 0..layers {
        // Single-qubit frame: RZ ladders, with occasional basis flips.
        for q in 0..qubits {
            c.rz(q, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            if layer % 3 == 2 {
                c.h(q);
            }
        }
        // Entangler rung: even or odd nearest-neighbour pairs, as
        // CNOT·RZ·CNOT two-qubit rotations (many angles are 0 or merge,
        // which is where VQE circuits pick up their reducibility).
        let start = (layer % 2) as u32;
        let mut q = start;
        while q + 1 < qubits {
            c.cnot(q, q + 1);
            c.rz(q + 1, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            c.cnot(q, q + 1);
            q += 2;
        }
    }
    c
}
