//! BoolSat: Boolean satisfiability by amplitude amplification.
//!
//! A random 3-CNF formula is compiled to a phase oracle (per-clause
//! Toffoli-computed flags, an AND-tree onto a result qubit, a Z kick, and
//! full uncomputation), wrapped in Grover-style diffusion rounds. The
//! compute/uncompute seams are exactly where real BoolSat circuits carry
//! removable redundancy.

use super::grid_angle;
use crate::builders::{mcx, mcz, toffoli};
use qcir::{Angle, Circuit, Qubit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 8, "BoolSat needs at least 8 qubits");
    // Layout: variables | clause flag | result | ancilla pool. Half the
    // width goes to variables so the diffusion MCZ (nv−1 controls, needing
    // nv−3 V-chain ancillas) always has enough clean ancillas.
    let nv = ((qubits - 2) / 2) as usize;
    let vars: Vec<Qubit> = (0..nv as u32).collect();
    let flag: Qubit = nv as u32;
    let result: Qubit = nv as u32 + 1;
    let pool: Vec<Qubit> = (nv as u32 + 2..qubits).collect();
    let anc: [Qubit; 2] = [pool[0], pool[1]];

    let clauses: Vec<[usize; 3]> = (0..2 * nv)
        .map(|_| {
            // Three *distinct* variables per clause (duplicate literals
            // would degenerate into same-control Toffolis).
            let a = rng.gen_range(0..nv);
            let mut b = rng.gen_range(0..nv - 1);
            if b >= a {
                b += 1;
            }
            let mut c = rng.gen_range(0..nv - 2);
            for taken in [a.min(b), a.max(b)] {
                if c >= taken {
                    c += 1;
                }
            }
            [a, b, c]
        })
        .collect();
    let signs: Vec<[bool; 3]> = clauses
        .iter()
        .map(|_| [rng.gen(), rng.gen(), rng.gen()])
        .collect();
    let rounds = (1usize << (nv / 4)).max(1);

    let mut c = Circuit::new(qubits);
    for &v in &vars {
        c.h(v);
    }
    for _ in 0..rounds {
        // Phase oracle: each clause toggles the flag; a Z on the result
        // qubit kicks the phase; everything uncomputes.
        for (cl, sg) in clauses.iter().zip(&signs) {
            let lits: Vec<Qubit> = cl.iter().map(|&i| vars[i]).collect();
            for (&q, &s) in lits.iter().zip(sg) {
                if s {
                    c.x(q);
                }
            }
            mcx(&mut c, &lits, flag, &anc);
            for (&q, &s) in lits.iter().zip(sg) {
                if s {
                    c.x(q);
                }
            }
            // Phase kick with a data-dependent rotation flavor.
            toffoli(&mut c, flag, result, anc[0]);
            c.rz(anc[0], Angle::pi_frac(grid_angle(rng), super::GRID_DEN));
            toffoli(&mut c, flag, result, anc[0]);
            // Uncompute the clause flag.
            for (&q, &s) in lits.iter().zip(sg) {
                if s {
                    c.x(q);
                }
            }
            mcx(&mut c, &lits, flag, &anc);
            for (&q, &s) in lits.iter().zip(sg) {
                if s {
                    c.x(q);
                }
            }
        }
        // Diffusion over the variable register (flag and result are clean
        // here, so they join the ancilla pool for the V-chain).
        for &v in &vars {
            c.h(v);
            c.x(v);
        }
        let (&last, ctrl) = vars.split_last().unwrap();
        let mut diff_anc = vec![flag, result];
        diff_anc.extend_from_slice(&pool);
        mcz(&mut c, ctrl, last, &diff_anc);
        for &v in &vars {
            c.x(v);
            c.h(v);
        }
    }
    c
}
