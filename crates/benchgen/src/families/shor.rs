//! Shor's algorithm: the controlled modular-exponentiation core, built from
//! controlled Draper (QFT-basis) adders — the structure responsible for the
//! benchmark's rapid size growth with qubit count.

use crate::builders::{cphase, crz, iqft, qft};
use qcir::{Circuit, Qubit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 5, "Shor needs at least 5 qubits");
    // Layout: exponent (control) register | work register.
    let ne = (qubits as usize) / 2;
    let exponent: Vec<Qubit> = (0..ne as u32).collect();
    let work: Vec<Qubit> = (ne as u32..qubits).collect();
    let nb = work.len();

    // Random odd "N" and base "a" drive the addend patterns.
    let modulus: u64 = rng.gen_range(0..1u64 << nb.min(50)) | 1;
    let base: u64 = rng.gen_range(1..1u64 << nb.min(50)) | 1;

    let mut c = Circuit::new(qubits);
    for &q in &exponent {
        c.h(q);
    }
    c.x(work[0]); // |1⟩ in the work register

    // For each exponent bit k: a controlled modular multiplication by
    // a^(2^k) mod N, expressed as nb controlled Draper additions in the
    // Fourier basis. Repetitions double with k (square-and-multiply).
    for (k, &ctl) in exponent.iter().enumerate() {
        let reps = (1usize << k.min(6)).max(1);
        let mut addend = base.wrapping_mul((k as u64).wrapping_add(1)) % modulus.max(1);
        for _ in 0..reps {
            qft(&mut c, &work);
            // Controlled addition of `addend` (Draper): phase each work
            // qubit by addend's bit pattern, controlled on `ctl`.
            for (j, &wq) in work.iter().enumerate() {
                for b in 0..nb - j {
                    if addend >> b & 1 == 1 {
                        crz(&mut c, ctl, wq, 1, 1 << b.min(20));
                    }
                }
            }
            iqft(&mut c, &work);
            // Modular reduction flavor: compare-and-correct phases between
            // adjacent work qubits (angles drawn per instance).
            for w in work.windows(2) {
                let den = 1i64 << rng.gen_range(1..6);
                cphase(&mut c, w[0], w[1], -1, den);
            }
            addend = addend.wrapping_mul(base) % modulus.max(1);
        }
    }
    // Final inverse QFT over the exponent register (period extraction).
    iqft(&mut c, &exponent);
    c
}
