//! The benchmark families: the eight of the paper's Section 7.2 plus two
//! reproduction extensions — the `Skewed` executor workload and the
//! `Parameterized` fixed-skeleton ansatz (the segment cache's target
//! workload).
//!
//! The paper draws its circuits from PennyLane, Qiskit, and NWQBench as QASM
//! files; this reproduction generates structurally equivalent circuits from
//! standard decompositions (see DESIGN.md for the substitution argument).
//! Every generator is deterministic in `(qubits, seed)`, emits only the
//! `{H, X, RZ, CNOT}` gate set, and carries the natural redundancy of naive
//! synthesis (compute/uncompute seams, adjacent inverse pairs, mergeable
//! rotation ladders) that circuit optimizers exist to remove.

mod boolsat;
mod bwt;
mod grover;
mod hhl;
mod parameterized;
mod shor;
mod skewed;
mod sqrt;
mod statevec;
mod vqe;

use qcir::Circuit;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One benchmark family: the paper's Table 1 families plus the
/// [`Skewed`](Family::Skewed) reproduction-extension workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Boolean satisfiability via Grover-style amplitude amplification.
    BoolSat,
    /// Binary welded tree quantum walk (Trotterized).
    Bwt,
    /// Grover search with multi-controlled-Z oracle and diffusion.
    Grover,
    /// HHL linear-system solver: QPE + controlled rotation + inverse QPE.
    Hhl,
    /// Shor's algorithm: controlled modular arithmetic over Draper adders.
    Shor,
    /// Quantum square root via reversible Newton iteration arithmetic.
    Sqrt,
    /// State-vector preparation with multiplexed rotations (precision grows
    /// with level, giving the 4^n size scaling seen in the paper).
    StateVec,
    /// Variational Quantum Eigensolver hardware-efficient ansatz.
    Vqe,
    /// Zipf-skewed segment-cost workload (reproduction extension, not in
    /// the paper): rare, enormous hot blocks among cheap filler — the
    /// worst case for contiguous-chunk parallel scheduling and the
    /// workload of the `exec_scaling` executor bench.
    Skewed,
    /// Fixed-structure variational ansatz (reproduction extension, not in
    /// the paper): the skeleton depends only on the qubit count and the
    /// seed varies only the rotation angles — the parameter-sweep
    /// workload the segment cache's angle-abstract keying targets.
    Parameterized,
}

impl Family {
    /// The paper's eight families, in its table order — what the
    /// paper-reproduction experiments (tables, figures, instance grids)
    /// iterate, so their artifacts keep a row-for-row correspondence
    /// with the paper's.
    pub const PAPER: [Family; 8] = [
        Family::BoolSat,
        Family::Bwt,
        Family::Grover,
        Family::Hhl,
        Family::Shor,
        Family::Sqrt,
        Family::StateVec,
        Family::Vqe,
    ];

    /// Every family: [`PAPER`](Self::PAPER) plus the reproduction
    /// extensions [`Skewed`](Family::Skewed) and
    /// [`Parameterized`](Family::Parameterized).
    pub const ALL: [Family; 10] = [
        Family::BoolSat,
        Family::Bwt,
        Family::Grover,
        Family::Hhl,
        Family::Shor,
        Family::Sqrt,
        Family::StateVec,
        Family::Vqe,
        Family::Skewed,
        Family::Parameterized,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::BoolSat => "BoolSat",
            Family::Bwt => "BWT",
            Family::Grover => "Grover",
            Family::Hhl => "HHL",
            Family::Shor => "Shor",
            Family::Sqrt => "Sqrt",
            Family::StateVec => "StateVec",
            Family::Vqe => "VQE",
            Family::Skewed => "Skewed",
            Family::Parameterized => "Parameterized",
        }
    }

    /// Parses a family name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(s))
    }

    /// The four qubit counts per family used in the paper's Tables 1–3.
    pub fn paper_qubits(self) -> [u32; 4] {
        match self {
            Family::BoolSat => [28, 30, 32, 34],
            Family::Bwt => [17, 21, 25, 29],
            Family::Grover => [9, 11, 13, 15],
            Family::Hhl => [7, 9, 11, 13],
            Family::Shor => [10, 12, 14, 16],
            Family::Sqrt => [42, 48, 54, 60],
            Family::StateVec => [5, 6, 7, 8],
            Family::Vqe => [18, 22, 26, 30],
            // Not a paper family; sized so its gate counts land in the
            // same range as the paper instances'.
            Family::Skewed => [16, 20, 24, 28],
            Family::Parameterized => [12, 16, 20, 24],
        }
    }

    /// A laptop-scale qubit ladder: four sizes whose gate counts grow the
    /// same way as the paper's but land in the 10³–10⁵ range, so the full
    /// experiment suite completes on a small machine. `scale` ∈ {0, 1, 2}
    /// shifts the ladder toward paper sizes.
    pub fn ladder(self, scale: u32) -> [u32; 4] {
        let bump = |b: [u32; 4], s: u32| [b[0] + s, b[1] + s, b[2] + s, b[3] + s];
        match self {
            Family::BoolSat => bump([16, 20, 24, 28], 2 * scale),
            Family::Bwt => bump([9, 12, 15, 18], 2 * scale),
            Family::Grover => bump([9, 11, 13, 15], scale),
            Family::Hhl => bump([8, 10, 11, 12], scale),
            Family::Shor => bump([8, 10, 12, 14], scale),
            Family::Sqrt => bump([14, 20, 26, 32], 4 * scale),
            Family::StateVec => bump([5, 6, 7, 8], scale),
            Family::Vqe => bump([12, 16, 20, 24], 2 * scale),
            Family::Skewed => bump([10, 14, 18, 22], 2 * scale),
            Family::Parameterized => bump([8, 12, 16, 20], 2 * scale),
        }
    }

    /// Smallest width the family's generator supports; [`Self::generate`]
    /// panics below it.
    pub fn min_qubits(self) -> u32 {
        match self {
            Family::BoolSat => 8,
            Family::Bwt => 6,
            Family::Grover => 5,
            Family::Hhl => 5,
            Family::Shor => 5,
            Family::Sqrt => 11,
            Family::StateVec => 2,
            Family::Vqe => 4,
            Family::Skewed => 4,
            Family::Parameterized => 4,
        }
    }

    /// Generates the family's circuit at the given width. Deterministic in
    /// `(qubits, seed)`.
    pub fn generate(self, qubits: u32, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (qubits as u64) << 32);
        let c = match self {
            Family::BoolSat => boolsat::generate(qubits, &mut rng),
            Family::Bwt => bwt::generate(qubits, &mut rng),
            Family::Grover => grover::generate(qubits, &mut rng),
            Family::Hhl => hhl::generate(qubits, &mut rng),
            Family::Shor => shor::generate(qubits, &mut rng),
            Family::Sqrt => sqrt::generate(qubits, &mut rng),
            Family::StateVec => statevec::generate(qubits, &mut rng),
            Family::Vqe => vqe::generate(qubits, &mut rng),
            Family::Skewed => skewed::generate(qubits, &mut rng),
            Family::Parameterized => parameterized::generate(qubits, &mut rng),
        };
        debug_assert_eq!(c.validate(), Ok(()));
        c
    }
}

/// A random angle numerator on the π/2^12 grid, biased toward "structured"
/// values (0 and small dyadics appear often, as in real compiled circuits).
pub(crate) fn grid_angle(rng: &mut ChaCha8Rng) -> i64 {
    match rng.gen_range(0..8) {
        0 => 0,
        1 => 1 << 10, // π/4
        2 => 1 << 11, // π/2
        3 => 3 << 10, // 3π/4
        _ => rng.gen_range(-(1 << 12)..(1 << 12)),
    }
}

/// Denominator matching [`grid_angle`]: angles are `num/4096 · π`.
pub(crate) const GRID_DEN: i64 = 1 << 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
            assert_eq!(Family::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(Family::from_name("nope"), None);
    }

    #[test]
    fn min_qubits_matches_generator_asserts() {
        // `min_qubits` duplicates the `assert!(qubits >= N)` constants in
        // each generator; this pins the two together so they cannot drift.
        for f in Family::ALL {
            let min = f.min_qubits();
            assert!(
                f.generate(min, 1).validate().is_ok(),
                "{}: generate(min_qubits) must succeed",
                f.name()
            );
            let below = std::panic::catch_unwind(|| f.generate(min - 1, 1));
            assert!(
                below.is_err(),
                "{}: generate(min_qubits - 1) must panic",
                f.name()
            );
        }
    }

    #[test]
    fn all_families_generate_valid_circuits() {
        for f in Family::ALL {
            for &q in &f.ladder(0) {
                let c = f.generate(q, 42);
                assert_eq!(c.validate(), Ok(()), "{} at {q} qubits invalid", f.name());
                assert!(
                    c.len() > 100,
                    "{} at {q} qubits suspiciously small: {}",
                    f.name(),
                    c.len()
                );
                assert_eq!(c.num_qubits, q, "{} width mismatch", f.name());
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        for f in Family::ALL {
            let q = f.ladder(0)[0];
            let a = f.generate(q, 7);
            let b = f.generate(q, 7);
            assert_eq!(a, b, "{} not deterministic", f.name());
            let c = f.generate(q, 8);
            assert_ne!(a, c, "{} ignores its seed", f.name());
        }
    }

    #[test]
    fn sizes_grow_along_ladder() {
        for f in Family::ALL {
            let sizes: Vec<usize> = f
                .ladder(0)
                .iter()
                .map(|&q| f.generate(q, 1).len())
                .collect();
            assert!(
                sizes.windows(2).all(|w| w[0] < w[1]),
                "{} sizes not increasing: {sizes:?}",
                f.name()
            );
        }
    }

    #[test]
    fn paper_families_are_pinned_to_the_original_eight() {
        // The paper-reproduction experiment grids iterate `Family::PAPER`
        // row-for-row against the paper's tables; reproduction extensions
        // must go in `ALL` only. This guard fails if anyone grows PAPER.
        let names: Vec<&str> = Family::PAPER.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            ["BoolSat", "BWT", "Grover", "HHL", "Shor", "Sqrt", "StateVec", "VQE"]
        );
        assert!(!Family::PAPER.contains(&Family::Skewed));
        assert!(!Family::PAPER.contains(&Family::Parameterized));
    }

    #[test]
    fn parameterized_skeleton_is_seed_invariant() {
        // The seed must vary only the angles: same width → identical
        // abstract (angle-blind) fingerprint, different concrete gates.
        for &q in &Family::Parameterized.ladder(0) {
            let a = Family::Parameterized.generate(q, 1);
            let b = Family::Parameterized.generate(q, 2);
            assert_ne!(a, b, "seeds must vary the angles at {q} qubits");
            assert_eq!(
                qcir::fingerprint_gates_abstract(a.num_qubits, &a.gates),
                qcir::fingerprint_gates_abstract(b.num_qubits, &b.gates),
                "skeleton drifted with the seed at {q} qubits"
            );
        }
    }

    #[test]
    fn small_instances_simulate() {
        // Unitarity sanity check on every family's smallest instance that
        // fits the simulator. (Full optimize-then-verify runs live in the
        // workspace integration tests, which may depend on qoracle.)
        for f in Family::ALL {
            let q = f.ladder(0)[0];
            if q > 14 {
                continue;
            }
            let c = f.generate(q, 3);
            if c.len() > 80_000 {
                continue;
            }
            let mut s = qsim::StateVector::random(q, 5);
            s.apply_circuit(&c);
            assert!(
                (s.norm() - 1.0).abs() < 1e-6,
                "{}: norm drifted to {}",
                f.name(),
                s.norm()
            );
        }
    }
}
