//! BWT: the binary welded tree quantum walk, Trotterized.
//!
//! Alternating applications of the two tree-coloring Hamiltonians, each step
//! a ladder of CNOT-conjugated rotations over the address register plus
//! Toffoli couplings at the weld.

use super::{grid_angle, GRID_DEN};
use crate::builders::toffoli;
use qcir::{Angle, Circuit, Qubit};
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 6, "BWT needs at least 6 qubits");
    // Layout: address register | color qubit | weld ancilla.
    let k = (qubits - 2) as usize;
    let addr: Vec<Qubit> = (0..k as u32).collect();
    let color: Qubit = k as u32;
    let weld: Qubit = k as u32 + 1;

    let steps = 12 * k;
    let mut c = Circuit::new(qubits);
    c.h(color);
    for step in 0..steps {
        // Coloring A: XX+YY-style coupling along the address chain,
        // decomposed into CNOT·RZ·CNOT conjugated by H.
        for w in addr.windows(2) {
            let (a, b) = (w[0], w[1]);
            c.h(a);
            c.cnot(a, b);
            c.rz(b, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            c.cnot(a, b);
            c.h(a);
        }
        // Coloring B: phase ladder keyed on the color qubit.
        for (j, &a) in addr.iter().enumerate() {
            c.cnot(color, a);
            c.rz(a, Angle::pi_frac(1, 1 << (j % 6 + 1)));
            c.cnot(color, a);
        }
        // Weld coupling every other step: parity of the two address ends
        // toggles the weld ancilla around a rotation.
        if step % 2 == 0 {
            toffoli(&mut c, addr[0], *addr.last().unwrap(), weld);
            c.rz(weld, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            toffoli(&mut c, addr[0], *addr.last().unwrap(), weld);
        }
        // Color flip between half-steps.
        c.x(color);
    }
    c
}
