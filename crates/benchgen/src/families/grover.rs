//! Grover search: marked-state phase oracle plus diffusion, iterated
//! ~π/4·√N times.

use crate::builders::mcz;
use qcir::{Circuit, Qubit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 5, "Grover needs at least 5 qubits");
    // Layout: search register | V-chain ancillas. A search register of s
    // qubits needs s−3 ancillas for the (s−1)-control MCZ.
    let s = ((qubits as usize) + 3) / 2;
    let search: Vec<Qubit> = (0..s as u32).collect();
    let anc: Vec<Qubit> = (s as u32..qubits).collect();

    let marked: u64 = rng.gen_range(0..1u64 << s.min(60));
    let iterations = {
        let n = (1u64 << s.min(40)) as f64;
        ((std::f64::consts::FRAC_PI_4 * n.sqrt()) as usize).max(1)
    };

    let mut c = Circuit::new(qubits);
    for &q in &search {
        c.h(q);
    }
    let (&last, ctrl) = search.split_last().unwrap();
    for _ in 0..iterations {
        // Oracle: flip phase of |marked⟩.
        for (i, &q) in search.iter().enumerate() {
            if marked >> i & 1 == 0 {
                c.x(q);
            }
        }
        mcz(&mut c, ctrl, last, &anc);
        for (i, &q) in search.iter().enumerate() {
            if marked >> i & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion.
        for &q in &search {
            c.h(q);
            c.x(q);
        }
        mcz(&mut c, ctrl, last, &anc);
        for &q in &search {
            c.x(q);
            c.h(q);
        }
    }
    c
}
