//! Parameterized: a fixed-structure variational ansatz whose *skeleton*
//! depends only on the qubit count — the seed varies nothing but the
//! rotation angles. Two instances at the same width are the same circuit
//! under an angle substitution, which is exactly the workload the segment
//! cache's angle-abstract keying targets (VQE/QAOA-style optimization
//! loops resubmit one ansatz with fresh parameters every iteration).
//!
//! Not a paper family: excluded from [`Family::PAPER`] so the
//! paper-reproduction tables keep their row-for-row correspondence.
//!
//! [`Family::PAPER`]: super::Family::PAPER

use super::{grid_angle, GRID_DEN};
use qcir::{Angle, Circuit};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 4, "Parameterized needs at least 4 qubits");
    let n = qubits as usize;
    let layers = (n * n / 2).max(4);

    // The skeleton rng is seeded by the WIDTH ALONE: every structural
    // choice (basis flips, entangler rung layout) draws from it, so the
    // caller's `rng` — which carries the seed — influences only angles.
    let mut skel = ChaCha8Rng::seed_from_u64(0x5041524153 ^ ((qubits as u64) << 8));

    let mut c = Circuit::new(qubits);
    for q in 0..qubits {
        c.h(q);
    }
    for layer in 0..layers {
        // Rotation frame: one parameter per qubit, occasional
        // skeleton-chosen basis flips (structure, not parameter).
        for q in 0..qubits {
            c.rz(q, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            if skel.gen_range(0..4) == 0 {
                c.h(q);
            }
        }
        // Entangler rung: even/odd nearest-neighbour pairs chosen by the
        // skeleton rng, each a CNOT·RZ(θ)·CNOT two-qubit rotation with a
        // per-seed parameter.
        let start = if skel.gen_bool(0.5) { 0 } else { 1 };
        let mut q = start;
        while q + 1 < qubits {
            c.cnot(q, q + 1);
            c.rz(q + 1, Angle::pi_frac(grid_angle(rng), GRID_DEN));
            c.cnot(q, q + 1);
            q += 2;
        }
        let _ = layer;
    }
    c
}
