//! Skewed: a worst-case workload for contiguous-chunk parallel
//! scheduling, built as a reproduction-extension family (not in the
//! paper's Table 1).
//!
//! The circuit alternates two kinds of blocks whose *per-segment oracle
//! cost* differs by more than an order of magnitude, with the expensive
//! kind drawn from a Zipf-like (`P(k) ∝ 1/k`) depth distribution:
//!
//! * **cold blocks** (the common case) are `RZ(odd)·H·CNOT` weaves over
//!   cycling wires — every cancellation walk in the rule pipeline stops
//!   at its next same-wire neighbour, the odd grid angles dodge every
//!   Hadamard-reduction special case, and no rewrite fires, so the
//!   oracle dismisses such a segment after one cheap pass;
//! * **hot blocks** (the Zipf tail) are deeply *nested single-wire
//!   palindromes* (`[H X]^d · RZ(θ) · RZ(−θ) · [X H]^d`): only the
//!   innermost adjacent pair is cancellable at any moment, so each
//!   fixpoint iteration of the pipeline peels one nesting level and a
//!   depth-`d` block costs ~`d` full pipeline passes.
//!
//! Consecutive 2Ω-segments therefore carry oracle costs spanning more
//! than an order of magnitude (measured ≥ 10× median-to-max at Ω = 50)
//! — the blockwise cost skew HOPPS observes in real circuits. Splitting
//! a round's fingers into one contiguous chunk per thread strands the
//! whole round behind whichever chunk drew the hot blocks;
//! work-stealing rebalances them. The `exec_scaling` bench sweeps worker
//! counts over this family to show the two schedulers side by side.

use super::{grid_angle, GRID_DEN};
use qcir::{Angle, Circuit};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Zipf-like rank sample: returns `k` in `1..=max_rank` with
/// `P(k) ∝ 1/k` (inverse-CDF over the harmonic weights, driven by the
/// rand shim's `f64` sampling).
fn zipf_rank(rng: &mut ChaCha8Rng, max_rank: usize) -> usize {
    debug_assert!(max_rank >= 1);
    let harmonic: f64 = (1..=max_rank).map(|k| 1.0 / k as f64).sum();
    let mut u: f64 = rng.gen::<f64>() * harmonic;
    for k in 1..=max_rank {
        u -= 1.0 / k as f64;
        if u <= 0.0 {
            return k;
        }
    }
    max_rank
}

/// A cold stretch: `RZ(odd)·H·CNOT` cells cycling the wires from a
/// random offset. On every wire the gate order is RZ → H → CNOT-control,
/// so each forward cancellation walk stops at its immediate same-wire
/// neighbour (RZ cannot pass H, H cannot pass a control, a CNOT cannot
/// pass the H on its control wire), and the odd grid angles rule out the
/// Hadamard-reduction rewrites — nothing fires, one pass, done.
fn cold_block(c: &mut Circuit, qubits: u32, rng: &mut ChaCha8Rng, cells: usize) {
    let lanes = qubits - 1;
    let offset: u32 = rng.gen_range(0..lanes);
    for i in 0..cells as u32 {
        let q = (offset + i) % lanes;
        c.rz(q, Angle::pi_frac(grid_angle(rng) | 1, GRID_DEN));
        c.h(q);
        c.cnot(q, q + 1);
    }
}

/// A hot block: a depth-`d` nested palindrome on one random wire —
/// alternating `H`/`X` shells around a `±θ` rotation pair that cancels
/// to nothing. Every shell's partner is blocked by the shell inside it,
/// so the pipeline's cancellation sweep removes only the innermost
/// adjacent pair per fixpoint iteration: the whole block drains, but at
/// a cost of ~`d` full passes over the segment.
fn hot_block(c: &mut Circuit, qubits: u32, rng: &mut ChaCha8Rng, depth: usize) {
    let q: u32 = rng.gen_range(0..qubits);
    let theta = grid_angle(rng) | 1;
    let shell = |c: &mut Circuit, k: usize| {
        if k.is_multiple_of(2) {
            c.h(q);
        } else {
            c.x(q);
        }
    };
    for k in 0..depth {
        shell(c, k);
    }
    c.rz(q, Angle::pi_frac(theta, GRID_DEN));
    c.rz(q, Angle::pi_frac(-theta, GRID_DEN));
    for k in (0..depth).rev() {
        shell(c, k);
    }
}

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 4, "Skewed needs at least 4 qubits");
    let n = qubits as usize;
    // Quadratic block count so the ladder's gate counts climb like the
    // other families'.
    let blocks = (n * n / 2).max(8);
    let mut c = Circuit::new(qubits);
    for _ in 0..blocks {
        // 1-in-16 blocks are hot, with a Zipf-distributed nesting depth:
        // most hot blocks are mild, a heavy 1/k tail is enormous.
        // Everything else is cheap filler — the mix that breaks
        // contiguous chunking.
        if rng.gen_range(0..16u32) == 0 {
            let depth = 8 * zipf_rank(rng, 16);
            hot_block(&mut c, qubits, rng, depth);
        } else {
            cold_block(&mut c, qubits, rng, 6);
        }
    }
    c
}
