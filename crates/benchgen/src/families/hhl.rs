//! HHL linear-system solver: quantum phase estimation over a Trotterized
//! Hamiltonian, a controlled eigenvalue-inversion rotation, and the inverse
//! QPE. The controlled-U^(2^k) powers give the family its exponential size
//! growth in the clock width (Table 1: HHL grows ~1000× across 6 qubits).

use super::{grid_angle, GRID_DEN};
use crate::builders::{crz, iqft, qft};
use qcir::{Circuit, Qubit};
use rand_chacha::ChaCha8Rng;

pub fn generate(qubits: u32, rng: &mut ChaCha8Rng) -> Circuit {
    assert!(qubits >= 5, "HHL needs at least 5 qubits");
    // Layout: clock register | 2 system qubits | rotation ancilla.
    let nc = (qubits - 3) as usize;
    let clock: Vec<Qubit> = (0..nc as u32).collect();
    let sys: [Qubit; 2] = [nc as u32, nc as u32 + 1];
    let anc: Qubit = nc as u32 + 2;

    // One Trotter block of the 2-qubit system Hamiltonian, controlled on a
    // clock qubit. Angles must be nonzero or the controlled evolution (and
    // with it the whole QPE/inverse-QPE sandwich) degenerates to identity.
    let block_angles: Vec<i64> = (0..4)
        .map(|_| loop {
            let a = grid_angle(rng);
            if a != 0 {
                break a;
            }
        })
        .collect();
    let u_block = |c: &mut Circuit, ctl: Qubit| {
        crz(c, ctl, sys[0], block_angles[0], GRID_DEN);
        c.cnot(sys[0], sys[1]);
        crz(c, ctl, sys[1], block_angles[1], GRID_DEN);
        c.cnot(sys[0], sys[1]);
        c.h(sys[0]);
        crz(c, ctl, sys[0], block_angles[2], GRID_DEN);
        c.h(sys[0]);
        crz(c, ctl, sys[1], block_angles[3], GRID_DEN);
    };

    let mut c = Circuit::new(qubits);
    // System preparation.
    c.h(sys[0]);
    c.cnot(sys[0], sys[1]);

    // QPE forward: H on clock, controlled powers U^(2^k), inverse QFT.
    for &q in &clock {
        c.h(q);
    }
    for (k, &q) in clock.iter().enumerate() {
        for _ in 0..1usize << k {
            u_block(&mut c, q);
        }
    }
    iqft(&mut c, &clock);

    // Eigenvalue-inversion rotation onto the ancilla.
    for (k, &q) in clock.iter().enumerate() {
        crz(&mut c, q, anc, 1, 1 << (k + 1));
    }
    c.h(anc);
    for (k, &q) in clock.iter().enumerate() {
        crz(&mut c, q, anc, -1, 1 << (k + 1));
    }

    // Inverse QPE: QFT, inverse controlled powers, H.
    qft(&mut c, &clock);
    for (k, &q) in clock.iter().enumerate().rev() {
        for _ in 0..1usize << k {
            // Inverse block: reversed order, negated rotations.
            crz(&mut c, q, sys[1], -block_angles[3], GRID_DEN);
            c.h(sys[0]);
            crz(&mut c, q, sys[0], -block_angles[2], GRID_DEN);
            c.h(sys[0]);
            c.cnot(sys[0], sys[1]);
            crz(&mut c, q, sys[1], -block_angles[1], GRID_DEN);
            c.cnot(sys[0], sys[1]);
            crz(&mut c, q, sys[0], -block_angles[0], GRID_DEN);
        }
    }
    for &q in &clock {
        c.h(q);
    }
    c
}
