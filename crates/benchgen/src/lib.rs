//! # benchgen — benchmark circuit generators for POPQC
//!
//! Deterministic generators for the eight benchmark families of the paper's
//! evaluation (Section 7.2): BoolSat, BWT, Grover, HHL, Shor, Sqrt,
//! StateVec, and VQE. The paper sources these as QASM files from PennyLane,
//! Qiskit, and NWQBench; this crate rebuilds structurally equivalent
//! circuits from standard decompositions so the reproduction is
//! self-contained (see DESIGN.md §1 for the substitution rationale).
//!
//! The [`builders`] module is the shared decomposition library (Toffoli,
//! multi-controlled X/Z, QFT, Cuccaro adders, multiplexed rotations), each
//! verified against the `qsim` simulator in tests.
//!
//! ```
//! use benchgen::Family;
//! let c = Family::Grover.generate(9, 42);
//! assert!(c.validate().is_ok());
//! assert_eq!(c.num_qubits, 9);
//! ```

pub mod builders;
pub mod families;

pub use families::Family;
