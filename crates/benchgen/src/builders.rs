//! Decomposition library shared by the benchmark generators.
//!
//! Everything emits only the POPQC gate set `{H, X, RZ, CNOT}`. The
//! decompositions are the standard textbook ones (Toffoli via 7 T-gates,
//! V-chain multi-controlled X, QFT with controlled phases, Cuccaro
//! ripple-carry adder, gray-code multiplexed rotations); each is verified
//! against the state-vector simulator in this crate's tests.

use qcir::{Angle, Circuit, Qubit};

/// `T = RZ(π/4)`.
pub const T: Angle = Angle::PI_4;
/// `T† = RZ(7π/4)`.
pub const TDG: Angle = Angle::SEVEN_PI_4;

/// Appends a Toffoli (CCX) on `(a, b, t)` using the standard 15-gate
/// Clifford+T decomposition (exact up to global phase).
pub fn toffoli(c: &mut Circuit, a: Qubit, b: Qubit, t: Qubit) {
    c.h(t)
        .cnot(b, t)
        .rz(t, TDG)
        .cnot(a, t)
        .rz(t, T)
        .cnot(b, t)
        .rz(t, TDG)
        .cnot(a, t)
        .rz(b, T)
        .rz(t, T)
        .h(t)
        .cnot(a, b)
        .rz(a, T)
        .rz(b, TDG)
        .cnot(a, b);
}

/// Appends a CZ on `(a, b)`: `H(b)·CNOT(a,b)·H(b)`.
pub fn cz(c: &mut Circuit, a: Qubit, b: Qubit) {
    c.h(b).cnot(a, b).h(b);
}

/// Appends a controlled-RZ(θ) on `(ctrl, tgt)`:
/// `RZ(tgt,θ/2)·CNOT·RZ(tgt,−θ/2)·CNOT` (exact).
pub fn crz(c: &mut Circuit, ctrl: Qubit, tgt: Qubit, theta_num: i64, theta_den: i64) {
    c.rz(tgt, Angle::pi_frac(theta_num, 2 * theta_den))
        .cnot(ctrl, tgt)
        .rz(tgt, Angle::pi_frac(-theta_num, 2 * theta_den))
        .cnot(ctrl, tgt);
}

/// Appends a controlled-phase CP(θ) on `(a, b)` (symmetric):
/// `RZ(a,θ/2)·RZ(b,θ/2)·CNOT·RZ(b,−θ/2)·CNOT`, exact up to global phase.
pub fn cphase(c: &mut Circuit, a: Qubit, b: Qubit, theta_num: i64, theta_den: i64) {
    c.rz(a, Angle::pi_frac(theta_num, 2 * theta_den))
        .rz(b, Angle::pi_frac(theta_num, 2 * theta_den))
        .cnot(a, b)
        .rz(b, Angle::pi_frac(-theta_num, 2 * theta_den))
        .cnot(a, b);
}

/// Appends a SWAP as three CNOTs.
pub fn swap(c: &mut Circuit, a: Qubit, b: Qubit) {
    c.cnot(a, b).cnot(b, a).cnot(a, b);
}

/// Appends a multi-controlled X over `controls` onto `target`, using the
/// V-chain construction with `controls.len().saturating_sub(2)` ancillas
/// from `ancillas` (compute, hit, uncompute).
///
/// The ancillas must start in `|0⟩` for the target flip to equal the AND of
/// all controls; they are always restored to their input state on exit.
///
/// Panics if too few ancillas are provided.
pub fn mcx(c: &mut Circuit, controls: &[Qubit], target: Qubit, ancillas: &[Qubit]) {
    match controls.len() {
        0 => {
            c.x(target);
        }
        1 => {
            c.cnot(controls[0], target);
        }
        2 => toffoli(c, controls[0], controls[1], target),
        k => {
            let need = k - 2;
            assert!(
                ancillas.len() >= need,
                "mcx with {k} controls needs {need} ancillas, got {}",
                ancillas.len()
            );
            // Compute chain.
            toffoli(c, controls[0], controls[1], ancillas[0]);
            for i in 2..k - 1 {
                toffoli(c, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            toffoli(c, controls[k - 1], ancillas[need - 1], target);
            // Uncompute chain.
            for i in (2..k - 1).rev() {
                toffoli(c, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            toffoli(c, controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Appends a multi-controlled Z: `H(target)·MCX·H(target)`.
pub fn mcz(c: &mut Circuit, controls: &[Qubit], target: Qubit, ancillas: &[Qubit]) {
    c.h(target);
    mcx(c, controls, target, ancillas);
    c.h(target);
}

/// Appends the quantum Fourier transform over `qs` (no final swaps):
/// `H` plus controlled phases `CP(π/2^(j−i))`.
pub fn qft(c: &mut Circuit, qs: &[Qubit]) {
    for i in 0..qs.len() {
        c.h(qs[i]);
        for j in i + 1..qs.len() {
            let k = (j - i) as i64;
            cphase(c, qs[j], qs[i], 1, 1 << k);
        }
    }
}

/// Appends the inverse QFT over `qs` (no swaps).
pub fn iqft(c: &mut Circuit, qs: &[Qubit]) {
    for i in (0..qs.len()).rev() {
        for j in (i + 1..qs.len()).rev() {
            let k = (j - i) as i64;
            cphase(c, qs[j], qs[i], -1, 1 << k);
        }
        c.h(qs[i]);
    }
}

/// Cuccaro MAJ block.
fn maj(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    c.cnot(z, y);
    c.cnot(z, x);
    toffoli(c, x, y, z);
}

/// Cuccaro UMA block.
fn uma(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    toffoli(c, x, y, z);
    c.cnot(z, x);
    c.cnot(x, y);
}

/// Appends a Cuccaro ripple-carry adder: `b += a` over equal-width little-
/// endian registers, with `carry_in` (dirty zero) and `carry_out`.
pub fn cuccaro_add(c: &mut Circuit, a: &[Qubit], b: &[Qubit], carry_in: Qubit, carry_out: Qubit) {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let n = a.len();
    maj(c, carry_in, b[0], a[0]);
    for i in 1..n {
        maj(c, a[i - 1], b[i], a[i]);
    }
    c.cnot(a[n - 1], carry_out);
    for i in (1..n).rev() {
        uma(c, a[i - 1], b[i], a[i]);
    }
    uma(c, carry_in, b[0], a[0]);
}

/// Appends the subtraction `b -= a (mod 2^n)` as X-conjugated addition
/// (`b − a = ¬(¬b + a)`). `carry_out` accumulates the borrow flag
/// (`carry_out ^= [a > b]` for `carry_in = 0`), making add-then-sub the
/// exact identity.
pub fn cuccaro_sub(c: &mut Circuit, a: &[Qubit], b: &[Qubit], carry_in: Qubit, carry_out: Qubit) {
    for &q in b {
        c.x(q);
    }
    cuccaro_add(c, a, b, carry_in, carry_out);
    for &q in b {
        c.x(q);
    }
}

/// Appends a multiplexed RZ (uniformly controlled rotation): a rotation on
/// `target` whose angle is `angles[s]/den · π` when `controls` hold basis
/// state `s` (bit `i` of `s` = value of `controls[i]`).
///
/// Naive recursive synthesis: conditioning on the most significant control,
/// `RZ(s₀..) = UC(½(lo+hi)) · CNOT · UC(½(lo−hi)) · CNOT` — `2^k` rotations
/// and `2^(k+1)−2` CNOTs. The redundant CNOT pairs at recursion seams are
/// deliberate: real toolchains emit them too, and they are exactly the kind
/// of local redundancy circuit optimizers exist to remove.
pub fn multiplexed_rz(
    c: &mut Circuit,
    controls: &[Qubit],
    target: Qubit,
    angles: &[i64],
    den: i64,
) {
    assert_eq!(angles.len(), 1usize << controls.len());
    assert!(den > 0);
    mux_rec(c, controls, target, angles, den);
}

fn mux_rec(c: &mut Circuit, controls: &[Qubit], target: Qubit, angles: &[i64], den: i64) {
    if controls.is_empty() {
        c.rz(target, Angle::pi_frac(angles[0], den));
        return;
    }
    let k = controls.len();
    let msb = controls[k - 1];
    let half = angles.len() / 2;
    let (lo, hi) = angles.split_at(half);
    // Halved sums/differences stay exact by doubling the denominator.
    let sum: Vec<i64> = lo.iter().zip(hi).map(|(a, b)| a + b).collect();
    let diff: Vec<i64> = lo.iter().zip(hi).map(|(a, b)| a - b).collect();
    mux_rec(c, &controls[..k - 1], target, &sum, den * 2);
    c.cnot(msb, target);
    mux_rec(c, &controls[..k - 1], target, &diff, den * 2);
    c.cnot(msb, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{circuits_equivalent_exact, Complex, StateVector};

    /// Simulates `c` on basis states accepted by `pre` and checks it
    /// implements the classical permutation `f` (up to one uniform phase).
    fn implements_permutation_on(
        c: &Circuit,
        pre: impl Fn(usize) -> bool,
        f: impl Fn(usize) -> usize,
    ) {
        let dim = 1usize << c.num_qubits;
        let mut phase: Option<Complex> = None;
        for j in (0..dim).filter(|&j| pre(j)) {
            let mut s = StateVector::basis(c.num_qubits, j);
            s.apply_circuit(c);
            let target = f(j);
            let amp = s.amplitudes()[target];
            assert!(
                (amp.norm() - 1.0).abs() < 1e-9,
                "basis {j}: amplitude at {target} is {amp:?}"
            );
            match phase {
                None => phase = Some(amp),
                Some(p) => assert!(
                    (amp - p).norm() < 1e-9,
                    "column phases differ: {amp:?} vs {p:?}"
                ),
            }
        }
    }

    /// [`implements_permutation_on`] over every basis state.
    fn implements_permutation(c: &Circuit, f: impl Fn(usize) -> usize) {
        implements_permutation_on(c, |_| true, f);
    }

    #[test]
    fn toffoli_is_ccx() {
        let mut c = Circuit::new(3);
        toffoli(&mut c, 0, 1, 2);
        implements_permutation(&c, |j| if j & 0b011 == 0b011 { j ^ 0b100 } else { j });
    }

    #[test]
    fn mcx_four_controls() {
        // qubits: controls=0,1,2,3  target=4  ancillas=5,6 (must be clean).
        let mut c = Circuit::new(7);
        mcx(&mut c, &[0, 1, 2, 3], 4, &[5, 6]);
        implements_permutation_on(
            &c,
            |j| j & 0b1100000 == 0, // clean ancillas only
            |j| {
                if j & 0b1111 == 0b1111 {
                    j ^ 0b10000
                } else {
                    j
                }
            },
        );
    }

    #[test]
    fn mcx_restores_dirty_ancillas() {
        // Even with dirty ancillas, the compute/uncompute chains restore
        // them; only the target flip condition degrades. Check ancilla bits
        // are preserved on every basis state.
        let mut c = Circuit::new(7);
        mcx(&mut c, &[0, 1, 2, 3], 4, &[5, 6]);
        for j in 0..1usize << 7 {
            let mut s = StateVector::basis(7, j);
            s.apply_circuit(&c);
            let (k, amp) = s
                .amplitudes()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
                .unwrap();
            assert!((amp.norm() - 1.0).abs() < 1e-9);
            assert_eq!(k & 0b1100000, j & 0b1100000, "ancillas not restored");
        }
    }

    #[test]
    fn mcx_small_arities() {
        let mut c = Circuit::new(2);
        mcx(&mut c, &[0], 1, &[]);
        implements_permutation(&c, |j| if j & 1 == 1 { j ^ 2 } else { j });
        let mut c = Circuit::new(1);
        mcx(&mut c, &[], 0, &[]);
        implements_permutation(&c, |j| j ^ 1);
    }

    #[test]
    fn swap_swaps() {
        let mut c = Circuit::new(2);
        swap(&mut c, 0, 1);
        implements_permutation(&c, |j| ((j & 1) << 1) | ((j >> 1) & 1));
    }

    #[test]
    fn crz_matches_reference() {
        // CRZ(θ) == diag(1, 1, e^{-iθ/2}, e^{iθ/2}) up to global phase
        // (angle normalization into [0,2π) can contribute a uniform ±1), so
        // compare relative phases between basis columns.
        let theta = std::f64::consts::PI / 4.0;
        let mut ours = Circuit::new(2);
        crz(&mut ours, 0, 1, 1, 4); // θ = π/4, control = qubit 0
        let col = |basis: usize| {
            let mut s = StateVector::basis(2, basis);
            s.apply_circuit(&ours);
            s.amplitudes()[basis]
        };
        let (c00, c01, c10, c11) = (col(0b00), col(0b01), col(0b10), col(0b11));
        // Control 0 branch: t=1 vs t=0 relative phase must be 1.
        assert!(((c10 * c00.conj()) - Complex::ONE).norm() < 1e-9);
        // Control 1 branch: |11⟩ vs |01⟩ relative phase = e^{iθ}.
        let rel = c11 * c01.conj();
        assert!(
            (rel - Complex::cis(theta)).norm() < 1e-9,
            "relative phase {rel:?}"
        );
        // Control-0 vs control-1 with t=0: e^{-iθ/2}.
        let rel = c01 * c00.conj();
        assert!((rel - Complex::cis(-theta / 2.0)).norm() < 1e-9);
    }

    #[test]
    fn cphase_is_symmetric_diag() {
        let mut a = Circuit::new(2);
        cphase(&mut a, 0, 1, 1, 2); // CP(π/2)
        let mut b = Circuit::new(2);
        cphase(&mut b, 1, 0, 1, 2);
        assert!(circuits_equivalent_exact(&a, &b));
        // |11> picks up e^{iπ/2} = i relative to |00>.
        let mut s = StateVector::basis(2, 0b11);
        s.apply_circuit(&a);
        let mut s0 = StateVector::basis(2, 0);
        s0.apply_circuit(&a);
        let rel = s.amplitudes()[3] * s0.amplitudes()[0].conj();
        assert!((rel - Complex::I).norm() < 1e-9, "got {rel:?}");
    }

    #[test]
    fn qft_iqft_is_identity() {
        let mut c = Circuit::new(4);
        qft(&mut c, &[0, 1, 2, 3]);
        iqft(&mut c, &[0, 1, 2, 3]);
        assert!(circuits_equivalent_exact(&c, &Circuit::new(4)));
    }

    #[test]
    fn cuccaro_adds() {
        // 3-bit registers: a = qubits 0..3, b = 3..6, cin = 6, cout = 7.
        let mut c = Circuit::new(8);
        cuccaro_add(&mut c, &[0, 1, 2], &[3, 4, 5], 6, 7);
        implements_permutation(&c, |j| {
            let a = j & 0b111;
            let b = (j >> 3) & 0b111;
            let cin = (j >> 6) & 1;
            let cout = (j >> 7) & 1;
            let sum = a + b + cin;
            let new_b = sum & 0b111;
            let new_cout = cout ^ (sum >> 3);
            a | (new_b << 3) | (cin << 6) | (new_cout << 7)
        });
    }

    #[test]
    fn multiplexed_rz_diagonal() {
        // 1 control: angles [π/2 when ctrl=0, π when ctrl=1] over den=1:
        // numerators [1, 2] with den 2 => angles {π/2, π}.
        let mut c = Circuit::new(2);
        multiplexed_rz(&mut c, &[0], 1, &[1, 2], 2);
        // Reference: RZ(π/2) on target when control=0: basis |00>=q1=0,q0=0:
        // amplitude phase e^{-i·θ(ctrl)/2}.
        for (basis, theta) in [
            (0b00, std::f64::consts::PI / 2.0),
            (0b01, std::f64::consts::PI),
        ] {
            let mut s = StateVector::basis(2, basis);
            s.apply_circuit(&c);
            // target (qubit 1) is 0 -> phase e^{-iθ/2}; global phase may
            // differ, so compare the *relative* phase between target=0 and
            // target=1 for the same control value.
            let mut s1 = StateVector::basis(2, basis | 0b10);
            s1.apply_circuit(&c);
            let rel = s1.amplitudes()[basis | 0b10] * s.amplitudes()[basis].conj();
            let expect = Complex::cis(theta);
            assert!(
                (rel - expect).norm() < 1e-9,
                "basis {basis:#b}: rel phase {rel:?}, expected {expect:?}"
            );
        }
    }

    #[test]
    fn multiplexed_rz_two_controls() {
        // θ(s)/π = s/4 for s in 0..4: numerators [0,1,2,3] over den 4.
        let mut c = Circuit::new(3);
        multiplexed_rz(&mut c, &[0, 1], 2, &[0, 1, 2, 3], 4);
        // 2^k rotations + 2^(k+1)−2 CNOTs.
        assert_eq!(c.len(), 4 + 6);
        assert_eq!(c.two_qubit_count(), 6);
        assert_eq!(c.validate(), Ok(()));
        // Verify the relative phase e^{iθ(s)} between target=1 and target=0
        // for every control state s.
        for s in 0..4usize {
            let mut lo = StateVector::basis(3, s);
            lo.apply_circuit(&c);
            let mut hi = StateVector::basis(3, s | 0b100);
            hi.apply_circuit(&c);
            let rel = hi.amplitudes()[s | 0b100] * lo.amplitudes()[s].conj();
            let expect = Complex::cis(s as f64 * std::f64::consts::PI / 4.0);
            assert!(
                (rel - expect).norm() < 1e-9,
                "control state {s}: rel {rel:?}, expected {expect:?}"
            );
        }
    }

    #[test]
    fn subtraction_inverts_addition() {
        let mut c = Circuit::new(8);
        cuccaro_add(&mut c, &[0, 1, 2], &[3, 4, 5], 6, 7);
        cuccaro_sub(&mut c, &[0, 1, 2], &[3, 4, 5], 6, 7);
        // add then sub is identity (carry restored as well).
        implements_permutation(&c, |j| j);
    }
}
