//! Property-based model checking of the Section 3 data structures: the
//! index tree and sparse circuit must agree with a naive reference model
//! under arbitrary update sequences.

use popqc_core::{IndexTree, SparseCircuit};
use proptest::prelude::*;

/// Reference model: plain vector of optional values.
#[derive(Clone)]
struct Model(Vec<Option<u32>>);

impl Model {
    fn before(&self, phys: usize) -> usize {
        self.0[..phys.min(self.0.len())]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }
    fn select(&self, rank: usize) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .nth(rank)
            .map(|(i, _)| i)
    }
    fn units(&self) -> Vec<u32> {
        self.0.iter().flatten().copied().collect()
    }
}

/// A batch of distinct sorted slot updates.
fn arb_updates(n: usize) -> impl Strategy<Value = Vec<(usize, Option<u32>)>> {
    prop::collection::btree_map(0..n, prop::option::of(0u32..1000), 0..n.min(32))
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_circuit_matches_model(
        n in 1usize..300,
        batches in prop::collection::vec(arb_updates(300), 0..8),
    ) {
        let initial: Vec<u32> = (0..n as u32).collect();
        let mut sc = SparseCircuit::create(initial.clone());
        let mut model = Model(initial.into_iter().map(Some).collect());

        for batch in batches {
            let batch: Vec<(usize, Option<u32>)> =
                batch.into_iter().filter(|(s, _)| *s < n).collect();
            sc.substitute(batch.clone());
            for (s, v) in batch {
                model.0[s] = v;
            }
            prop_assert_eq!(sc.len(), model.units().len());
            prop_assert_eq!(sc.to_units(), model.units());
            for probe in [0usize, 1, n / 2, n.saturating_sub(1), n] {
                prop_assert_eq!(sc.before(probe), model.before(probe), "before({})", probe);
            }
            for rank in [0usize, 1, sc.len() / 2, sc.len().saturating_sub(1), sc.len()] {
                prop_assert_eq!(sc.select(rank), model.select(rank), "select({})", rank);
            }
        }
    }

    #[test]
    fn index_tree_select_before_inverse(weights in prop::collection::vec(0u32..2, 1..400)) {
        let t = IndexTree::new(&weights);
        let total: usize = weights.iter().map(|&w| w as usize).sum();
        prop_assert_eq!(t.total(), total);
        for rank in 0..total {
            let phys = t.select(rank).unwrap();
            prop_assert_eq!(t.before(phys), rank);
            prop_assert_eq!(t.leaf(phys), 1);
        }
        prop_assert_eq!(t.select(total), None);
        prop_assert_eq!(t.before(weights.len()), total);
    }

    #[test]
    fn index_tree_updates_match_model(
        n in 1usize..257,
        batches in prop::collection::vec(arb_updates(257), 1..6),
    ) {
        let mut weights = vec![1u32; n];
        let t = IndexTree::new(&weights);
        for batch in batches {
            let ups: Vec<(usize, u32)> = batch
                .into_iter()
                .filter(|(s, _)| *s < n)
                .map(|(s, v)| (s, v.is_some() as u32))
                .collect();
            t.update_leaves(&ups);
            for (s, w) in ups {
                weights[s] = w;
            }
            let total: usize = weights.iter().map(|&w| w as usize).sum();
            prop_assert_eq!(t.total(), total);
            // Spot-check a few ranks against the model.
            let live: Vec<usize> =
                (0..n).filter(|&i| weights[i] == 1).collect();
            for k in [0usize, live.len() / 2, live.len().saturating_sub(1)] {
                if k < live.len() {
                    prop_assert_eq!(t.select(k), Some(live[k]));
                }
            }
        }
    }
}
