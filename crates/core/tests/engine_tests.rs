//! Engine-level tests: the POPQC driver against the paper's guarantees.

use popqc_core::{
    optimize_circuit, optimize_layered, popqc_units, verify_local_optimality, PopqcConfig,
};
use qcir::{Angle, Circuit, Gate};
use qoracle::{
    IdentityOracle, LayerSearchOracle, MixedDepthGates, RuleBasedOptimizer, SegmentOracle,
};

/// Deterministic random circuit, redundancy-dense (angles on the π/8 grid).
fn random_circuit(n: u32, len: usize, seed: u64) -> Circuit {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let r = next();
        let q = (r % n as u64) as u32;
        match (r >> 8) % 4 {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => {
                c.rz(q, Angle::pi_frac(((r >> 16) % 16) as i64, 8));
            }
            _ => {
                let mut t = ((r >> 16) % n as u64) as u32;
                if t == q {
                    t = (t + 1) % n;
                }
                c.cnot(q, t);
            }
        }
    }
    c
}

#[test]
fn reduces_and_preserves_semantics() {
    let oracle = RuleBasedOptimizer::oracle();
    for seed in 0..5 {
        let c = random_circuit(5, 300, seed * 71 + 9);
        let (opt, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(16));
        assert!(opt.len() < c.len(), "seed {seed}: no reduction");
        assert_eq!(stats.final_units, opt.len());
        assert_eq!(stats.initial_units, c.len());
        assert!(
            qsim::circuits_equivalent(&c, &opt, 3, seed ^ 0xc0ffee),
            "seed {seed}: POPQC changed semantics"
        );
    }
}

#[test]
fn output_is_locally_optimal() {
    // Theorem 7: with a well-behaved oracle (the theorem's hypothesis,
    // enforced constructively by the wrapper), every Ω-segment of the
    // output is oracle-optimal.
    let omega = 12;
    let oracle = qoracle::WellBehavedOracle::new(RuleBasedOptimizer::oracle(), omega);
    for seed in [3u64, 17, 42] {
        let c = random_circuit(4, 250, seed);
        let (opt, _) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        assert_eq!(
            verify_local_optimality(&opt.gates, c.num_qubits, &oracle, omega),
            Ok(()),
            "seed {seed}: an Ω-window is still improvable"
        );
        assert!(qsim::circuits_equivalent(&c, &opt, 2, seed ^ 0x42));
    }
}

#[test]
fn deterministic_across_thread_counts() {
    let oracle = RuleBasedOptimizer::oracle();
    let c = random_circuit(6, 400, 2024);
    let cfg = PopqcConfig::with_omega(20);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| optimize_circuit(&c, &oracle, &cfg).0)
    };
    let a = run(1);
    let b = run(2);
    let d = run(4);
    assert_eq!(a, b, "1-thread vs 2-thread outputs differ");
    assert_eq!(b, d, "2-thread vs 4-thread outputs differ");
}

#[test]
fn identity_oracle_terminates_quickly_with_no_changes() {
    let c = random_circuit(4, 200, 7);
    let (opt, stats) = optimize_circuit(&c, &IdentityOracle, &PopqcConfig::with_omega(10));
    assert_eq!(opt.gates, c.gates);
    assert_eq!(stats.accepted, 0);
    // Every initial finger costs exactly one oracle call, then disappears.
    let initial_fingers = c.len().div_ceil(10);
    assert_eq!(stats.oracle_calls as usize, initial_fingers);
}

#[test]
fn oracle_calls_bounded_by_potential() {
    // Lemma 2: calls <= |F0| + 2|C| (potential function bound).
    let oracle = RuleBasedOptimizer::oracle();
    for seed in 0..4 {
        let c = random_circuit(5, 300, seed * 13 + 1);
        let omega = 10;
        let (_, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        let bound = c.len().div_ceil(omega) + 2 * c.len();
        assert!(
            (stats.oracle_calls as usize) <= bound,
            "seed {seed}: {} calls exceeds potential bound {bound}",
            stats.oracle_calls
        );
    }
}

#[test]
fn empty_and_tiny_circuits() {
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(8);
    let empty = Circuit::new(3);
    let (opt, stats) = optimize_circuit(&empty, &oracle, &cfg);
    assert!(opt.is_empty());
    assert_eq!(stats.rounds, 0);

    let mut one = Circuit::new(1);
    one.h(0);
    let (opt, _) = optimize_circuit(&one, &oracle, &cfg);
    assert_eq!(opt.gates, vec![Gate::H(0)]);

    let mut pair = Circuit::new(1);
    pair.h(0).h(0);
    let (opt, _) = optimize_circuit(&pair, &oracle, &cfg);
    assert!(opt.is_empty(), "HH should vanish, got {:?}", opt.gates);
}

#[test]
fn omega_one_still_sound() {
    let oracle = RuleBasedOptimizer::oracle();
    let c = random_circuit(3, 60, 5);
    let (opt, _) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(1));
    assert!(qsim::circuits_equivalent(&c, &opt, 3, 55));
}

#[test]
fn stats_are_coherent() {
    let oracle = RuleBasedOptimizer::oracle();
    let c = random_circuit(5, 300, 77);
    let (opt, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(16));
    assert_eq!(stats.rounds, stats.rounds_detail.len());
    let sel_sum: usize = stats.rounds_detail.iter().map(|r| r.selected).sum();
    assert_eq!(sel_sum as u64, stats.oracle_calls);
    let acc_sum: usize = stats.rounds_detail.iter().map(|r| r.accepted).sum();
    assert_eq!(acc_sum as u64, stats.accepted);
    assert!(stats.accepted <= stats.oracle_calls);
    assert!(stats.oracle_nanos <= stats.total_nanos * rayon::current_num_threads() as u64 * 2);
    assert!((stats.reduction() - (1.0 - opt.len() as f64 / c.len() as f64)).abs() < 1e-12);
}

#[test]
fn layer_mode_reduces_mixed_cost() {
    let c = random_circuit(5, 300, 31);
    let lc = c.layered();
    let oracle = LayerSearchOracle::new(MixedDepthGates::default(), 150, c.num_qubits);
    let cfg = PopqcConfig::with_omega(6);
    let before_cost = lc.mixed_cost();
    let (opt, stats) = optimize_layered(&lc, &oracle, &cfg);
    let after_cost = opt.mixed_cost();
    assert!(
        after_cost <= before_cost,
        "mixed cost rose: {before_cost} -> {after_cost}"
    );
    assert!(stats.oracle_calls > 0);
    let flat = opt.to_circuit();
    assert!(
        qsim::circuits_equivalent(&c, &flat, 3, 919),
        "layer-mode POPQC changed semantics"
    );
}

#[test]
fn popqc_units_generic_over_plain_data() {
    // The engine is unit-agnostic; drive it with integers and a toy oracle
    // that removes adjacent equal pairs.
    struct PairRemover;
    impl SegmentOracle<u32> for PairRemover {
        fn optimize(&self, units: &[u32], _n: u32) -> Vec<u32> {
            let mut out: Vec<u32> = Vec::with_capacity(units.len());
            for &u in units {
                if out.last() == Some(&u) {
                    out.pop();
                } else {
                    out.push(u);
                }
            }
            out
        }
        fn cost(&self, units: &[u32]) -> u64 {
            units.len() as u64
        }
    }
    let data = vec![1, 2, 2, 3, 3, 3, 4, 4, 5, 1, 1, 5];
    let (out, stats) = popqc_units(data, 0, &PairRemover, &PopqcConfig::with_omega(3));
    // Full stack-cancellation of this sequence: 1 2 2 3 3 3 4 4 5 1 1 5 ->
    // 1 3 5 5 ... depends on windowing, but local optimality w.r.t. Ω=3
    // windows must hold.
    assert_eq!(
        verify_local_optimality(&out, 0, &PairRemover, 3),
        Ok(()),
        "output {out:?} has an improvable window"
    );
    assert!(stats.final_units <= stats.initial_units);
}

/// A transparent memoizing [`SegmentCacheHook`] keyed by the exact segment:
/// the simplest cache that satisfies the hook contract ("lookup returns
/// exactly what the oracle would").
type MemoMap = std::collections::HashMap<(u32, Vec<Gate>), Vec<Gate>>;

struct MemoCache {
    map: std::sync::Mutex<MemoMap>,
}

impl MemoCache {
    fn new() -> MemoCache {
        MemoCache {
            map: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl popqc_core::SegmentCacheHook<Gate> for MemoCache {
    fn lookup(&self, segment: &[Gate], num_qubits: u32) -> Option<Vec<Gate>> {
        let map = self.map.lock().unwrap();
        map.get(&(num_qubits, segment.to_vec())).cloned()
    }

    fn record(&self, segment: &[Gate], num_qubits: u32, optimized: &[Gate]) {
        let mut map = self.map.lock().unwrap();
        map.insert((num_qubits, segment.to_vec()), optimized.to_vec());
    }
}

#[test]
fn segment_cache_hook_replaces_oracle_calls_without_changing_output() {
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(16);
    let c = random_circuit(5, 300, 0xCAFE);

    let (plain, plain_stats) = optimize_circuit(&c, &oracle, &cfg);
    assert_eq!(
        plain_stats.seg_cache_hits, 0,
        "no-hook path must not count hits"
    );

    // Cold run through an empty cache: identical result, and every segment
    // either reached the oracle or was served by an earlier intra-run
    // recording (identical segments recur across rounds), never both.
    let cache = MemoCache::new();
    let (cold, cold_stats) = popqc_core::optimize_circuit_cached(&c, &oracle, &cfg, &(), &cache);
    assert_eq!(cold.gates, plain.gates);
    assert_eq!(
        cold_stats.oracle_calls + cold_stats.seg_cache_hits,
        plain_stats.oracle_calls
    );

    // Warm re-run: every segment repeats, so every lookup hits and the
    // oracle is never consulted — yet the output is byte-identical.
    let (warm, warm_stats) = popqc_core::optimize_circuit_cached(&c, &oracle, &cfg, &(), &cache);
    assert_eq!(warm.gates, plain.gates);
    assert_eq!(
        warm_stats.oracle_calls, 0,
        "warm run must not call the oracle"
    );
    assert_eq!(
        warm_stats.seg_cache_hits, plain_stats.oracle_calls,
        "every would-be oracle call must be served by the cache"
    );
    // Hits on improving rewrites still count as accepted.
    assert_eq!(warm_stats.accepted, plain_stats.accepted);
}
