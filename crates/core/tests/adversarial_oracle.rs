//! Failure injection: the engine must stay safe under misbehaving oracles.
//!
//! POPQC's contract with the oracle (determinism + monotonicity) is what the
//! built-in oracles guarantee; these tests check that the *engine* contains
//! the damage when an oracle breaks the contract: no panics, guaranteed
//! termination, no substitution of oversized segments.

use popqc_core::{optimize_circuit, popqc_units, PopqcConfig};
use qcir::{Angle, Circuit, Gate};
use qoracle::SegmentOracle;
use std::sync::atomic::{AtomicU64, Ordering};

fn test_circuit(len: usize) -> Circuit {
    let mut c = Circuit::new(4);
    for i in 0..len {
        match i % 4 {
            0 => {
                c.h((i % 4) as u32);
            }
            1 => {
                c.cnot((i % 3) as u32, 3);
            }
            2 => {
                c.rz((i % 4) as u32, Angle::PI_4);
            }
            _ => {
                c.x((i % 4) as u32);
            }
        }
    }
    c
}

/// Always returns a *larger* segment (breaks monotonicity).
struct GrowingOracle;
impl SegmentOracle<Gate> for GrowingOracle {
    fn optimize(&self, units: &[Gate], _n: u32) -> Vec<Gate> {
        let mut v = units.to_vec();
        v.push(Gate::H(0));
        v.push(Gate::H(0));
        v
    }
    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }
}

#[test]
fn growing_oracle_is_rejected_everywhere() {
    let c = test_circuit(300);
    let (out, stats) = optimize_circuit(&c, &GrowingOracle, &PopqcConfig::with_omega(16));
    // Larger outputs are never substituted; fingers drain; input survives.
    assert_eq!(out.gates, c.gates);
    assert_eq!(stats.accepted, 0);
    assert!(stats.rounds < 100);
}

/// Claims a lower cost while returning *more* units (cost/length mismatch).
struct LyingCostOracle;
impl SegmentOracle<Gate> for LyingCostOracle {
    fn optimize(&self, units: &[Gate], _n: u32) -> Vec<Gate> {
        let mut v = units.to_vec();
        v.push(Gate::X(0));
        v
    }
    fn cost(&self, units: &[Gate]) -> u64 {
        // Inverted cost: pretends longer is cheaper.
        u64::MAX - units.len() as u64
    }
}

#[test]
fn oversized_outputs_never_substitute_even_with_lying_cost() {
    let c = test_circuit(200);
    let (out, stats) = optimize_circuit(&c, &LyingCostOracle, &PopqcConfig::with_omega(8));
    // cost says "improved" but the length guard (opt.len() <= seg.len())
    // refuses the substitution, so the circuit is untouched...
    assert_eq!(out.gates, c.gates);
    assert_eq!(stats.accepted, 0);
}

/// Shrinks segments by dropping the last unit — semantically wrong, but
/// contract-conforming in shape. The engine should terminate having
/// accepted plenty of substitutions (the engine cannot detect semantic
/// lies; that is the oracle's obligation, which our real oracles discharge
/// via the simulator-backed test suites).
struct DropLastOracle;
impl SegmentOracle<u32> for DropLastOracle {
    fn optimize(&self, units: &[u32], _n: u32) -> Vec<u32> {
        units[..units.len().saturating_sub(1)].to_vec()
    }
    fn cost(&self, units: &[u32]) -> u64 {
        units.len() as u64
    }
}

#[test]
fn always_shrinking_oracle_terminates_by_potential() {
    let data: Vec<u32> = (0..500).collect();
    let (out, stats) = popqc_units(data, 0, &DropLastOracle, &PopqcConfig::with_omega(10));
    // Potential L = |F| + 2|C| bounds the calls even under maximal churn.
    let bound = 500usize.div_ceil(10) + 2 * 500;
    assert!((stats.oracle_calls as usize) <= bound);
    assert!(out.len() < 500);
}

/// Nondeterministic oracle: alternates between improving and not improving
/// the same segment. Termination must still hold (the potential function
/// argument is per-call, not per-segment).
struct FlakyOracle {
    calls: AtomicU64,
}
impl SegmentOracle<Gate> for FlakyOracle {
    fn optimize(&self, units: &[Gate], _n: u32) -> Vec<Gate> {
        let k = self.calls.fetch_add(1, Ordering::Relaxed);
        if k.is_multiple_of(2) && units.len() > 2 {
            units[..units.len() - 1].to_vec()
        } else {
            units.to_vec()
        }
    }
    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }
}

#[test]
fn flaky_oracle_still_terminates() {
    let c = test_circuit(400);
    let oracle = FlakyOracle {
        calls: AtomicU64::new(0),
    };
    let cfg = PopqcConfig::with_omega(12);
    let (out, stats) = optimize_circuit(&c, &oracle, &cfg);
    assert!(out.len() <= c.len());
    let bound = c.len().div_ceil(12) + 2 * c.len();
    assert!((stats.oracle_calls as usize) <= bound);
}

/// Ω larger than the whole circuit: one segment covers everything.
#[test]
fn omega_larger_than_circuit() {
    let c = test_circuit(50);
    let oracle = qoracle::RuleBasedOptimizer::oracle();
    let (out, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(10_000));
    assert!(out.len() <= c.len());
    assert!(stats.oracle_calls >= 1);
    assert!(qsim::circuits_equivalent(&c, &out, 2, 9));
}
