//! # popqc-core — Parallel Optimization for Quantum Circuits
//!
//! The paper's primary contribution: a parallel algorithm for *local
//! optimization* of quantum circuits. Given an oracle optimizer and a
//! segment size Ω, POPQC produces a circuit in which **every Ω-segment is
//! optimal with respect to the oracle** (Theorem 7), using
//! `O(n(Ω lg n + W))` work and `O(r(lg n + S))` span (Theorem 4).
//!
//! The pieces, mapped to the paper:
//!
//! * [`index_tree::IndexTree`] — the weighted complete binary tree of
//!   Section 3 / Figure 1 that locates live gates among tombstones in
//!   O(lg n).
//! * [`sparse::SparseCircuit`] — the Algorithm 1 interface: `create`,
//!   `before`, `get`, `substitute`, `gates` (here `to_units`), with the
//!   stated cost bounds.
//! * [`fingers`] — `selectFingers` (Algorithm 4) and the sorted finger
//!   merge.
//! * [`engine`] — the round-based driver (Algorithms 2–3), generic over the
//!   unit type: [`qcir::Gate`] for the primary gate-sequence mode,
//!   [`qcir::Layer`] for the Section 7.8 depth-aware mode.
//!
//! ## Quick start
//!
//! ```
//! use popqc_core::{optimize_circuit, PopqcConfig};
//! use qoracle::RuleBasedOptimizer;
//! use qcir::{Angle, Circuit};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).h(0).cnot(0, 1).rz(1, Angle::PI_4).rz(1, Angle::PI_4).cnot(0, 1);
//! let oracle = RuleBasedOptimizer::oracle();
//! let (opt, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(4));
//! assert!(opt.len() < c.len());
//! assert!(stats.rounds >= 1);
//! ```

pub mod disjoint;
pub mod engine;
pub mod fingers;
pub mod index_tree;
pub mod sparse;

pub use engine::{
    optimize_circuit, optimize_circuit_cached, optimize_circuit_observed, optimize_layered,
    popqc_units, popqc_units_cached, popqc_units_observed, verify_local_optimality, FnObserver,
    NoSegmentCache, PopqcConfig, PopqcStats, RoundObserver, RoundRecord, SegmentCacheHook,
};
pub use index_tree::IndexTree;
pub use sparse::SparseCircuit;
