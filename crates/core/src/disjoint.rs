//! Disjoint parallel writes into a slice.
//!
//! `optimizeSegments` substitutes many index/unit pairs into the slot array
//! in one parallel phase. Lemma 5 guarantees the touched segments are
//! disjoint, so the writes never alias — but Rust's `&mut` discipline cannot
//! express "disjoint at runtime by algorithmic invariant". Following the
//! standard practice for invariant-carrying unsafe code (encapsulate the
//! invariant behind a tiny, heavily-asserted API), this module provides a
//! shared-reference writer whose single `unsafe` method documents exactly
//! what the caller must uphold.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A write-only view of `&mut [T]` that permits concurrent writes to
/// *distinct* indices from multiple threads.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a UnsafeCell<[T]>>,
}

// SAFETY: sharing the writer across threads is sound because the only
// mutation path is `write`, whose contract requires globally distinct
// indices; distinct indices touch non-overlapping memory.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a mutable slice. The borrow keeps the slice exclusively ours
    /// for the writer's lifetime.
    pub fn new(slice: &'a mut [T]) -> DisjointWriter<'a, T> {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// Across the writer's entire lifetime, no two calls (from any threads)
    /// may use the same `index`, and nothing else may read or write the
    /// underlying slice concurrently. Bounds are checked in all builds.
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "DisjointWriter index out of bounds");
        // SAFETY: in-bounds by the assert; exclusive by the caller contract.
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut v = vec![0u64; 10_000];
        {
            let w = DisjointWriter::new(&mut v);
            (0..10_000u64).into_par_iter().for_each(|i| {
                // SAFETY: indices are unique by construction.
                unsafe { w.write(i as usize, i * 3) };
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut v = vec![0u8; 4];
        let w = DisjointWriter::new(&mut v);
        unsafe { w.write(4, 1) };
    }
}
