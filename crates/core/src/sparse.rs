//! The sparse circuit: tombstoned slot array + index tree (Algorithm 1).
//!
//! Gates (or layers, in the Section 7.8 mode) live in a fixed slot array;
//! removing a unit replaces it with a tombstone (`None`). The paired
//! [`IndexTree`] locates live units by logical rank in O(lg n), which is what
//! keeps segment extraction cheap as tombstones accumulate.

use crate::disjoint::DisjointWriter;
use crate::index_tree::IndexTree;
use rayon::prelude::*;

/// A substitution entry: put `unit` (or a tombstone) at slot `slot`.
pub type Update<U> = (usize, Option<U>);

/// The paper's circuit data structure, generic over the unit type
/// (`qcir::Gate` for gate granularity, `qcir::Layer` for layer granularity).
pub struct SparseCircuit<U> {
    slots: Vec<Option<U>>,
    tree: IndexTree,
}

impl<U: Clone + Send + Sync> SparseCircuit<U> {
    /// `create` (Algorithm 1): builds the slot array and its index tree.
    /// O(n) work, O(lg n) span.
    pub fn create(units: Vec<U>) -> SparseCircuit<U> {
        let weights = vec![1u32; units.len()];
        let tree = IndexTree::new(&weights);
        SparseCircuit {
            slots: units.into_iter().map(Some).collect(),
            tree,
        }
    }

    /// Number of slots (live + tombstones).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of live units.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.total()
    }

    /// `true` iff no live units remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `before` (Algorithm 1): live units strictly before slot `phys`.
    /// `phys == num_slots()` acts as an end sentinel. O(lg n).
    #[inline]
    pub fn before(&self, phys: usize) -> usize {
        self.tree.before(phys)
    }

    /// Slot index of the `rank`-th live unit, or `None` past the end.
    /// This is the root-to-leaf walk backing the paper's `get`. O(lg n).
    #[inline]
    pub fn select(&self, rank: usize) -> Option<usize> {
        self.tree.select(rank)
    }

    /// `get` (Algorithm 1): the `rank`-th live unit, skipping tombstones.
    /// O(lg n).
    pub fn get(&self, rank: usize) -> Option<&U> {
        let slot = self.tree.select(rank)?;
        self.slots[slot].as_ref()
    }

    /// Direct slot access (may be a tombstone).
    #[inline]
    pub fn slot(&self, phys: usize) -> Option<&U> {
        self.slots[phys].as_ref()
    }

    /// `substitute` (Algorithm 1): applies a batch of slot updates and
    /// repairs the index tree. Slots must be distinct and sorted ascending —
    /// guaranteed by the engine because selected fingers are non-interfering
    /// (Lemma 5). O(l·lg n) work, O(lg n) span.
    pub fn substitute(&mut self, updates: Vec<Update<U>>) {
        if updates.is_empty() {
            return;
        }
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "substitute slots must be sorted and distinct"
        );
        let leaf_updates: Vec<(usize, u32)> = updates
            .iter()
            .map(|(s, u)| (*s, u.is_some() as u32))
            .collect();
        {
            let writer = DisjointWriter::new(&mut self.slots);
            if updates.len() >= 1 << 12 {
                updates.into_par_iter().for_each(|(slot, unit)| {
                    // SAFETY: slots are distinct (asserted above) and the
                    // writer exclusively borrows `self.slots`.
                    unsafe { writer.write(slot, unit) };
                });
            } else {
                for (slot, unit) in updates {
                    // SAFETY: as above.
                    unsafe { writer.write(slot, unit) };
                }
            }
        }
        self.tree.update_leaves(&leaf_updates);
    }

    /// `gates` (Algorithm 1): the live units in order, tombstones dropped.
    /// O(n) work, O(lg n) span (parallel filter-collect).
    pub fn to_units(&self) -> Vec<U> {
        if self.slots.len() >= 1 << 12 {
            self.slots.par_iter().filter_map(|s| s.clone()).collect()
        } else {
            self.slots.iter().filter_map(|s| s.clone()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_before() {
        let c = SparseCircuit::create(vec!['a', 'b', 'c', 'd', 'e']);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(0), Some(&'a'));
        assert_eq!(c.get(4), Some(&'e'));
        assert_eq!(c.get(5), None);
        assert_eq!(c.before(3), 3);
    }

    #[test]
    fn substitute_with_tombstones() {
        let mut c = SparseCircuit::create(vec![10, 20, 30, 40, 50]);
        c.substitute(vec![(1, None), (3, Some(99))]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.to_units(), vec![10, 30, 99, 50]);
        assert_eq!(c.get(1), Some(&30));
        assert_eq!(c.get(2), Some(&99));
        // before skips the tombstone at slot 1.
        assert_eq!(c.before(3), 2);
        assert_eq!(c.select(2), Some(3));
    }

    #[test]
    fn repeated_substitutions_drain_circuit() {
        let mut c = SparseCircuit::create((0..100).collect::<Vec<i32>>());
        for i in 0..100 {
            c.substitute(vec![(i, None)]);
            assert_eq!(c.len(), 99 - i);
        }
        assert!(c.is_empty());
        assert!(c.to_units().is_empty());
        assert_eq!(c.select(0), None);
    }

    #[test]
    fn large_parallel_substitute() {
        let n = 1 << 14;
        let mut c = SparseCircuit::create((0..n as u64).collect::<Vec<u64>>());
        // Tombstone every even slot in one batch.
        let ups: Vec<Update<u64>> = (0..n).step_by(2).map(|i| (i, None)).collect();
        c.substitute(ups);
        assert_eq!(c.len(), n / 2);
        let units = c.to_units();
        assert_eq!(units.len(), n / 2);
        assert!(units
            .iter()
            .enumerate()
            .all(|(k, &v)| v == 2 * k as u64 + 1));
    }

    #[test]
    fn end_sentinel_before() {
        let mut c = SparseCircuit::create(vec![1, 2, 3]);
        c.substitute(vec![(2, None)]);
        assert_eq!(c.before(3), 2);
    }
}
