//! The index tree (Section 3, Figure 1).
//!
//! A complete binary tree over the circuit's slot array. Each leaf holds
//! weight 1 (a live unit) or 0 (a tombstone); each internal node holds the
//! sum of its children, i.e. the number of live units in its subtree. The
//! tree supports the Algorithm 1 interface within its stated cost bounds:
//!
//! | operation       | work          | span     |
//! |-----------------|---------------|----------|
//! | `new`           | O(n)          | O(lg n)  |
//! | `before`        | O(lg n)       | O(lg n)  |
//! | `select`        | O(lg n)       | O(lg n)  |
//! | `update_leaves` | O(l·lg n)     | O(lg n)  |
//!
//! The tree is stored implicitly (1-indexed heap layout) in a flat vector of
//! `AtomicU32`s. Atomics with relaxed ordering suffice because every mutation
//! phase is separated from reads by a Rayon join, which provides the
//! necessary happens-before edges; within a phase all writes target disjoint
//! nodes (leaf updates write distinct leaves; level repairs write distinct
//! parents).

use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Sequential fallback threshold: below this many elements a phase runs
/// sequentially rather than paying Rayon's fork-join overhead.
const PAR_THRESHOLD: usize = 1 << 12;

/// A fixed-capacity weighted index tree over `len` slots.
pub struct IndexTree {
    /// Heap-layout nodes; `w[1]` is the root, leaves at `cap..cap+len`.
    w: Vec<AtomicU32>,
    /// Number of leaves (next power of two ≥ `len`).
    cap: usize,
    /// Number of real slots.
    len: usize,
}

impl IndexTree {
    /// Builds the tree from initial leaf weights (0 or 1 per slot).
    /// O(n) work, O(lg n) span.
    pub fn new(weights: &[u32]) -> IndexTree {
        let len = weights.len();
        let cap = len.next_power_of_two().max(1);
        let mut w = Vec::with_capacity(2 * cap);
        w.resize_with(2 * cap, || AtomicU32::new(0));
        let tree = IndexTree { w, cap, len };
        // Fill leaves.
        if len >= PAR_THRESHOLD {
            tree.w[cap..cap + len]
                .par_iter()
                .zip(weights.par_iter())
                .for_each(|(slot, &v)| slot.store(v, Relaxed));
        } else {
            for (slot, &v) in tree.w[cap..cap + len].iter().zip(weights) {
                slot.store(v, Relaxed);
            }
        }
        // Build internal levels bottom-up; each level is an independent
        // parallel map over its nodes.
        let mut level_start = cap / 2;
        while level_start >= 1 {
            let level_len = level_start;
            let build = |i: usize| {
                let node = level_start + i;
                let sum = tree.w[2 * node].load(Relaxed) + tree.w[2 * node + 1].load(Relaxed);
                tree.w[node].store(sum, Relaxed);
            };
            if level_len >= PAR_THRESHOLD {
                (0..level_len).into_par_iter().for_each(build);
            } else {
                (0..level_len).for_each(build);
            }
            level_start /= 2;
        }
        tree
    }

    /// Number of slots (live + tombstoned).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tree was built over zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live (non-tombstone) units.
    #[inline]
    pub fn total(&self) -> usize {
        if self.cap == 0 {
            0
        } else {
            self.w[1].load(Relaxed) as usize
        }
    }

    /// Weight of one leaf (0 or 1).
    #[inline]
    pub fn leaf(&self, slot: usize) -> u32 {
        self.w[self.cap + slot].load(Relaxed)
    }

    /// The paper's `before`: the number of live units strictly before slot
    /// index `phys`. O(lg n) — walk the leaf-to-root path, summing left
    /// siblings' weights.
    pub fn before(&self, phys: usize) -> usize {
        debug_assert!(phys <= self.len);
        // Allow phys == len as an "end" sentinel meaning "after everything".
        if phys >= self.len {
            return self.total();
        }
        let mut node = self.cap + phys;
        let mut acc = 0usize;
        while node > 1 {
            if node & 1 == 1 {
                acc += self.w[node - 1].load(Relaxed) as usize;
            }
            node /= 2;
        }
        acc
    }

    /// The paper's `get` path: the slot index of the `rank`-th live unit
    /// (0-based, tombstones skipped), or `None` if `rank ≥ total`.
    /// O(lg n) — walk root-to-leaf guided by subtree weights.
    pub fn select(&self, rank: usize) -> Option<usize> {
        if rank >= self.total() {
            return None;
        }
        let mut node = 1usize;
        let mut rank = rank as u32;
        while node < self.cap {
            let left = self.w[2 * node].load(Relaxed);
            if rank < left {
                node *= 2;
            } else {
                rank -= left;
                node = 2 * node + 1;
            }
        }
        Some(node - self.cap)
    }

    /// Applies a batch of leaf updates `(slot, weight)` and repairs all
    /// affected internal nodes. Slots must be distinct and sorted ascending.
    /// O(l·lg n) work, O(lg n) span: leaves in one parallel phase, then one
    /// parallel phase per level over the dedup'd parent set.
    pub fn update_leaves(&self, updates: &[(usize, u32)]) {
        if updates.is_empty() {
            return;
        }
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "update slots must be sorted and distinct"
        );
        let write = |&(slot, v): &(usize, u32)| {
            debug_assert!(slot < self.len);
            self.w[self.cap + slot].store(v, Relaxed);
        };
        if updates.len() >= PAR_THRESHOLD {
            updates.par_iter().for_each(write);
        } else {
            updates.iter().for_each(write);
        }

        // Repair: parent sets per level, dedup'd (sorted input keeps each
        // level's node list sorted, so dedup is a linear scan).
        let mut nodes: Vec<usize> = updates.iter().map(|&(s, _)| (self.cap + s) / 2).collect();
        nodes.dedup();
        while !nodes.is_empty() && nodes[0] >= 1 {
            let repair = |&node: &usize| {
                let sum = self.w[2 * node].load(Relaxed) + self.w[2 * node + 1].load(Relaxed);
                self.w[node].store(sum, Relaxed);
            };
            if nodes.len() >= PAR_THRESHOLD {
                nodes.par_iter().for_each(repair);
            } else {
                nodes.iter().for_each(repair);
            }
            if nodes[0] == 1 {
                break;
            }
            for n in &mut nodes {
                *n /= 2;
            }
            nodes.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: a plain weight vector.
    struct Naive(Vec<u32>);

    impl Naive {
        fn before(&self, phys: usize) -> usize {
            self.0[..phys.min(self.0.len())]
                .iter()
                .map(|&w| w as usize)
                .sum()
        }
        fn select(&self, rank: usize) -> Option<usize> {
            let mut r = rank;
            for (i, &w) in self.0.iter().enumerate() {
                if w == 1 {
                    if r == 0 {
                        return Some(i);
                    }
                    r -= 1;
                }
            }
            None
        }
    }

    #[test]
    fn build_and_total() {
        let t = IndexTree::new(&[1, 1, 1, 1, 1]);
        assert_eq!(t.total(), 5);
        assert_eq!(t.len(), 5);
        let t = IndexTree::new(&[1, 0, 1, 0]);
        assert_eq!(t.total(), 2);
        let t = IndexTree::new(&[]);
        assert_eq!(t.total(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn figure_1_example() {
        // Paper Figure 1: 5 gates; removing gates at slots 1 and 3 leaves 3.
        let t = IndexTree::new(&[1, 1, 1, 1, 1]);
        // before(CNOT at slot 2) = 2 (red path example).
        assert_eq!(t.before(2), 2);
        t.update_leaves(&[(1, 0), (3, 0)]);
        assert_eq!(t.total(), 3);
        assert_eq!(t.before(2), 1);
        assert_eq!(t.select(0), Some(0));
        assert_eq!(t.select(1), Some(2));
        assert_eq!(t.select(2), Some(4));
        assert_eq!(t.select(3), None);
    }

    #[test]
    fn before_end_sentinel() {
        let t = IndexTree::new(&[1, 0, 1]);
        assert_eq!(t.before(3), 2);
        assert_eq!(t.before(2), 1);
        assert_eq!(t.before(0), 0);
    }

    #[test]
    fn matches_naive_under_random_updates() {
        let n = 257; // force a ragged last level
        let mut weights = vec![1u32; n];
        let t = IndexTree::new(&weights);
        let mut seed = 0xDEADBEEFu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..50 {
            // Random batch of distinct sorted updates.
            let mut ups: Vec<(usize, u32)> = (0..8)
                .map(|_| ((rng() as usize) % n, (rng() % 2) as u32))
                .collect();
            ups.sort();
            ups.dedup_by_key(|u| u.0);
            t.update_leaves(&ups);
            for &(s, v) in &ups {
                weights[s] = v;
            }
            let naive = Naive(weights.clone());
            assert_eq!(
                t.total(),
                naive.0.iter().map(|&w| w as usize).sum::<usize>()
            );
            for probe in [0usize, 1, n / 3, n / 2, n - 1, n] {
                assert_eq!(t.before(probe), naive.before(probe), "before({probe})");
            }
            for rank in [0usize, 1, 5, t.total().saturating_sub(1), t.total()] {
                assert_eq!(t.select(rank), naive.select(rank), "select({rank})");
            }
        }
    }

    #[test]
    fn select_before_are_inverse() {
        let t = IndexTree::new(&[1, 0, 0, 1, 1, 0, 1, 1]);
        for rank in 0..t.total() {
            let phys = t.select(rank).unwrap();
            assert_eq!(t.before(phys), rank);
            assert_eq!(t.leaf(phys), 1);
        }
    }

    #[test]
    fn large_parallel_build() {
        let n = 1 << 15;
        let weights: Vec<u32> = (0..n).map(|i| (i % 3 != 0) as u32).collect();
        let t = IndexTree::new(&weights);
        let expect: usize = weights.iter().map(|&w| w as usize).sum();
        assert_eq!(t.total(), expect);
        assert_eq!(t.before(n), expect);
        // Spot-check select against arithmetic: live slots are those with
        // i % 3 != 0.
        let live: Vec<usize> = (0..n).filter(|i| i % 3 != 0).collect();
        for &r in &[0usize, 1, 100, expect / 2, expect - 1] {
            assert_eq!(t.select(r), Some(live[r]));
        }
    }
}
