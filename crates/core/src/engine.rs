//! The POPQC driver (Algorithms 2 and 3).
//!
//! Rounds of: select non-interfering fingers → optimize their 2Ω-segments in
//! parallel (a single Rayon `par_iter` is the paper's `parmap`) → substitute
//! the results → update the finger set. Terminates when no fingers remain;
//! the potential function `|F| + 2·cost` (Lemma 2) strictly decreases with
//! every oracle call, so termination needs no well-behavedness assumption.
//!
//! The engine is generic over the unit type: `Gate` reproduces the paper's
//! primary gate-sequence mode; `Layer` reproduces the layered/depth-aware
//! mode of Section 7.8.

use crate::fingers::{merge_dedup, select_fingers};
use crate::sparse::{SparseCircuit, Update};
use qcir::{Circuit, Gate, Layer, LayeredCircuit};
use qoracle::SegmentOracle;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// POPQC parameters.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PopqcConfig {
    /// The local-optimality radius Ω (the paper's default is 200).
    pub omega: usize,
    /// Safety valve on rounds; termination is guaranteed anyway, so the
    /// default is effectively unbounded.
    pub max_rounds: usize,
}

impl Default for PopqcConfig {
    fn default() -> Self {
        PopqcConfig {
            omega: 200,
            max_rounds: usize::MAX,
        }
    }
}

impl PopqcConfig {
    /// Config with a given Ω and unbounded rounds.
    pub fn with_omega(omega: usize) -> PopqcConfig {
        PopqcConfig {
            omega,
            ..Default::default()
        }
    }
}

/// Per-round accounting (drives Figures 4 and 7).
#[derive(Clone, Copy, Debug)]
pub struct RoundRecord {
    /// Fingers alive at the start of the round.
    pub fingers: usize,
    /// Fingers selected (= oracle calls this round).
    pub selected: usize,
    /// Oracle calls whose result was accepted.
    pub accepted: usize,
}

/// Run statistics (drives Tables 1–3 and Figures 3–5, 7, 8).
#[derive(Clone, Debug, Default)]
pub struct PopqcStats {
    /// Number of rounds executed (outer-loop iterations).
    pub rounds: usize,
    /// Total oracle invocations.
    pub oracle_calls: u64,
    /// Oracle invocations whose output was accepted.
    pub accepted: u64,
    /// Summed wall-clock time inside the oracle across all calls
    /// (exceeds elapsed time when calls run in parallel).
    pub oracle_nanos: u64,
    /// End-to-end wall-clock time of the run.
    pub total_nanos: u64,
    /// Unit count before optimization.
    pub initial_units: usize,
    /// Unit count after optimization.
    pub final_units: usize,
    /// Segment-cache hits: segments whose rewrite was served by a
    /// [`SegmentCacheHook`] without invoking the oracle. Disjoint from
    /// `oracle_calls` — a segment either hits the cache or reaches the
    /// oracle, never both.
    pub seg_cache_hits: u64,
    /// Per-round breakdown.
    pub rounds_detail: Vec<RoundRecord>,
}

impl PopqcStats {
    /// Gate/unit reduction as a fraction of the input size.
    pub fn reduction(&self) -> f64 {
        if self.initial_units == 0 {
            0.0
        } else {
            1.0 - self.final_units as f64 / self.initial_units as f64
        }
    }
}

/// Observer notified as an optimization run progresses — the hook the batch
/// service (and any future UI) uses to surface live per-job progress
/// without touching the engine's hot path.
///
/// Called once per round, after the round's substitutions land, from the
/// driving thread. Implementations should be cheap; the engine blocks on
/// them.
pub trait RoundObserver: Sync {
    fn on_round(&self, round: usize, record: &RoundRecord);
}

/// The no-op observer used by the plain entry points.
impl RoundObserver for () {
    #[inline]
    fn on_round(&self, _round: usize, _record: &RoundRecord) {}
}

/// Adapts a closure into a [`RoundObserver`].
pub struct FnObserver<F>(pub F);

impl<F: Fn(usize, &RoundRecord) + Sync> RoundObserver for FnObserver<F> {
    #[inline]
    fn on_round(&self, round: usize, record: &RoundRecord) {
        (self.0)(round, record)
    }
}

/// Segment-level cache consulted inside the engine's hot path, *before*
/// each oracle call. A hit replaces the oracle invocation entirely — the
/// cached rewrite is fed through the same acceptance test the oracle's
/// output would face, so hits are recorded as accepted rewrites without
/// an oracle call and `oracle_calls` honestly approaches zero on warm
/// parameter sweeps.
///
/// Implementations own their keying policy (the service keys by segment
/// fingerprint + oracle identity; angle-abstracted when the oracle
/// declares `angle_independent`). The contract the engine relies on:
/// `lookup` returns exactly what the configured oracle's `optimize` would
/// return for this segment — including *non-improving* outputs, which
/// must be cached too or repeated misses re-pay the oracle on every
/// sweep iteration.
///
/// Called from inside the round's `parmap`, so implementations must be
/// cheap and thread-safe.
pub trait SegmentCacheHook<U>: Sync {
    /// Returns the cached oracle output for `segment`, or `None` to fall
    /// through to the oracle.
    fn lookup(&self, segment: &[U], num_qubits: u32) -> Option<Vec<U>>;

    /// Records the oracle's output for `segment` after a miss.
    fn record(&self, segment: &[U], num_qubits: u32, optimized: &[U]);
}

/// The no-op cache used by the plain entry points: never hits, records
/// nothing.
pub struct NoSegmentCache;

impl<U> SegmentCacheHook<U> for NoSegmentCache {
    #[inline]
    fn lookup(&self, _segment: &[U], _num_qubits: u32) -> Option<Vec<U>> {
        None
    }

    #[inline]
    fn record(&self, _segment: &[U], _num_qubits: u32, _optimized: &[U]) {}
}

/// POPQC (Algorithm 2) over an arbitrary unit sequence.
///
/// Returns the optimized unit sequence and run statistics. Deterministic:
/// the result is identical for every Rayon thread-pool size.
pub fn popqc_units<U, O>(
    units: Vec<U>,
    num_qubits: u32,
    oracle: &O,
    cfg: &PopqcConfig,
) -> (Vec<U>, PopqcStats)
where
    U: Clone + Send + Sync,
    O: SegmentOracle<U> + ?Sized,
{
    popqc_units_observed(units, num_qubits, oracle, cfg, &())
}

/// [`popqc_units`] with a [`RoundObserver`] progress hook.
pub fn popqc_units_observed<U, O, Obs>(
    units: Vec<U>,
    num_qubits: u32,
    oracle: &O,
    cfg: &PopqcConfig,
    observer: &Obs,
) -> (Vec<U>, PopqcStats)
where
    U: Clone + Send + Sync,
    O: SegmentOracle<U> + ?Sized,
    Obs: RoundObserver + ?Sized,
{
    popqc_units_cached(units, num_qubits, oracle, cfg, observer, &NoSegmentCache)
}

/// [`popqc_units_observed`] with a [`SegmentCacheHook`] consulted before
/// every oracle call.
pub fn popqc_units_cached<U, O, Obs, C>(
    units: Vec<U>,
    num_qubits: u32,
    oracle: &O,
    cfg: &PopqcConfig,
    observer: &Obs,
    cache: &C,
) -> (Vec<U>, PopqcStats)
where
    U: Clone + Send + Sync,
    O: SegmentOracle<U> + ?Sized,
    Obs: RoundObserver + ?Sized,
    C: SegmentCacheHook<U> + ?Sized,
{
    assert!(cfg.omega >= 1, "Ω must be at least 1");
    let t_start = Instant::now();
    let n = units.len();
    let mut stats = PopqcStats {
        initial_units: n,
        ..Default::default()
    };

    // Initialize fingers at every Ω-th slot (physical == logical initially).
    let mut fingers: Vec<usize> = (0..n).step_by(cfg.omega).collect();
    let mut circuit = SparseCircuit::create(units);

    let oracle_nanos = AtomicU64::new(0);
    let calls = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);
    let seg_hits = AtomicU64::new(0);

    while !fingers.is_empty() && stats.rounds < cfg.max_rounds {
        let (selected, remaining) = select_fingers(&circuit, &fingers, cfg.omega);
        let round_accepted = AtomicU64::new(0);

        // The paper's parmap over selected fingers (Algorithm 3 line 3).
        let results: Vec<(Vec<usize>, Vec<Update<U>>)> = selected
            .par_iter()
            .map(|&f| {
                optimize_one_segment(
                    &circuit,
                    f,
                    num_qubits,
                    oracle,
                    cfg.omega,
                    &oracle_nanos,
                    &calls,
                    &round_accepted,
                    cache,
                    &seg_hits,
                )
            })
            .collect();

        // Flatten preserving order: selected fingers ascend and their
        // segments are disjoint, so both lists arrive sorted.
        let mut new_fingers = Vec::new();
        let mut updates = Vec::new();
        for (nf, up) in results {
            new_fingers.extend(nf);
            updates.extend(up);
        }
        circuit.substitute(updates);

        let ra = round_accepted.load(Relaxed);
        accepted.fetch_add(ra, Relaxed);
        let record = RoundRecord {
            fingers: fingers.len(),
            selected: selected.len(),
            accepted: ra as usize,
        };
        stats.rounds_detail.push(record);
        stats.rounds += 1;
        observer.on_round(stats.rounds, &record);
        fingers = merge_dedup(&remaining, &new_fingers);
    }

    let out = circuit.to_units();
    stats.final_units = out.len();
    stats.oracle_calls = calls.load(Relaxed);
    stats.accepted = accepted.load(Relaxed);
    stats.oracle_nanos = oracle_nanos.load(Relaxed);
    stats.seg_cache_hits = seg_hits.load(Relaxed);
    stats.total_nanos = t_start.elapsed().as_nanos() as u64;
    (out, stats)
}

/// One selected finger's work item (Algorithm 3 lines 4–13): extract the
/// 2Ω-segment around the finger, call the oracle, and on acceptance emit the
/// substitution plus boundary fingers.
#[allow(clippy::too_many_arguments)]
fn optimize_one_segment<U, O, C>(
    circuit: &SparseCircuit<U>,
    finger: usize,
    num_qubits: u32,
    oracle: &O,
    omega: usize,
    oracle_nanos: &AtomicU64,
    calls: &AtomicU64,
    accepted: &AtomicU64,
    cache: &C,
    seg_hits: &AtomicU64,
) -> (Vec<usize>, Vec<Update<U>>)
where
    U: Clone + Send + Sync,
    O: SegmentOracle<U> + ?Sized,
    C: SegmentCacheHook<U> + ?Sized,
{
    let total = circuit.len();
    let pos = circuit.before(finger);
    let start = pos.saturating_sub(omega);
    let end = (pos + omega).min(total);
    if end <= start {
        return (Vec::new(), Vec::new());
    }
    // Segment extraction: O(Ω lg n) work, O(lg n + Ω) span.
    let phys: Vec<usize> = (start..end)
        .map(|r| circuit.select(r).expect("rank in range"))
        .collect();
    let segment: Vec<U> = phys
        .iter()
        .map(|&p| circuit.slot(p).expect("live slot").clone())
        .collect();

    // Segment cache first: a hit replaces the oracle call entirely (the
    // cached rewrite still faces the acceptance test below, so hits on
    // improving rewrites count as accepted — without an oracle call).
    let opt = match cache.lookup(&segment, num_qubits) {
        Some(hit) => {
            seg_hits.fetch_add(1, Relaxed);
            hit
        }
        None => {
            let t0 = Instant::now();
            let opt = oracle.optimize(&segment, num_qubits);
            oracle_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Relaxed);
            calls.fetch_add(1, Relaxed);
            cache.record(&segment, num_qubits, &opt);
            opt
        }
    };

    let improved = oracle.cost(&opt) < oracle.cost(&segment) && opt.len() <= segment.len();
    if !improved {
        // Oracle found nothing: drop the finger (Algorithm 3 line 12).
        return (Vec::new(), Vec::new());
    }
    accepted.fetch_add(1, Relaxed);

    // padWithTombstone: surplus slots become tombstones.
    let updates: Vec<Update<U>> = phys
        .iter()
        .enumerate()
        .map(|(k, &p)| (p, opt.get(k).cloned()))
        .collect();

    // Boundary fingers at the segment's first unit and the first unit after
    // it (both as physical indices, stable under the coming substitution).
    let mut new_fingers = vec![phys[0]];
    if end < total {
        new_fingers.push(circuit.select(end).expect("rank in range"));
    }
    (new_fingers, updates)
}

/// Gate-granularity POPQC over a [`Circuit`] (the paper's primary mode).
pub fn optimize_circuit<O: SegmentOracle<Gate> + ?Sized>(
    c: &Circuit,
    oracle: &O,
    cfg: &PopqcConfig,
) -> (Circuit, PopqcStats) {
    optimize_circuit_observed(c, oracle, cfg, &())
}

/// [`optimize_circuit`] with a [`RoundObserver`] progress hook.
pub fn optimize_circuit_observed<O: SegmentOracle<Gate> + ?Sized, Obs: RoundObserver + ?Sized>(
    c: &Circuit,
    oracle: &O,
    cfg: &PopqcConfig,
    observer: &Obs,
) -> (Circuit, PopqcStats) {
    optimize_circuit_cached(c, oracle, cfg, observer, &NoSegmentCache)
}

/// [`optimize_circuit_observed`] with a [`SegmentCacheHook`] consulted
/// before every oracle call.
pub fn optimize_circuit_cached<O, Obs, C>(
    c: &Circuit,
    oracle: &O,
    cfg: &PopqcConfig,
    observer: &Obs,
    cache: &C,
) -> (Circuit, PopqcStats)
where
    O: SegmentOracle<Gate> + ?Sized,
    Obs: RoundObserver + ?Sized,
    C: SegmentCacheHook<Gate> + ?Sized,
{
    let (gates, stats) =
        popqc_units_cached(c.gates.clone(), c.num_qubits, oracle, cfg, observer, cache);
    (
        Circuit {
            num_qubits: c.num_qubits,
            gates,
        },
        stats,
    )
}

/// Layer-granularity POPQC over a [`LayeredCircuit`] (Section 7.8 mode).
pub fn optimize_layered<O: SegmentOracle<Layer> + ?Sized>(
    lc: &LayeredCircuit,
    oracle: &O,
    cfg: &PopqcConfig,
) -> (LayeredCircuit, PopqcStats) {
    let (layers, stats) = popqc_units(lc.layers.clone(), lc.num_qubits, oracle, cfg);
    (
        LayeredCircuit {
            num_qubits: lc.num_qubits,
            layers,
        },
        stats,
    )
}

/// Checks the paper's local-optimality guarantee (Theorem 7) directly: every
/// Ω-window of `units` must not be improvable by the oracle. Returns the
/// first improvable window's start on failure. O(n·Ω·W) — test-sized inputs
/// only.
pub fn verify_local_optimality<U, O>(
    units: &[U],
    num_qubits: u32,
    oracle: &O,
    omega: usize,
) -> Result<(), usize>
where
    U: Clone + Send + Sync,
    O: SegmentOracle<U> + ?Sized,
{
    if units.len() < 2 {
        return Ok(());
    }
    let windows = units.len().saturating_sub(omega - 1).max(1);
    for start in 0..windows {
        let window = &units[start..(start + omega).min(units.len())];
        let opt = oracle.optimize(window, num_qubits);
        if oracle.cost(&opt) < oracle.cost(window) && opt.len() <= window.len() {
            return Err(start);
        }
    }
    Ok(())
}
