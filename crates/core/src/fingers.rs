//! Finger bookkeeping: `selectFingers` (Algorithm 4) and the sorted merge of
//! finger sets (Algorithm 3 line 18).
//!
//! Fingers are stored as *physical* slot indices. Grouping and interference
//! are defined over *logical* positions (tombstones excluded), obtained via
//! `before`. Keeping physical indices makes fingers stable under
//! substitution: tombstoning units elsewhere never moves a finger.

use crate::sparse::SparseCircuit;
use rayon::prelude::*;

/// `selectFingers` (Algorithm 4): partitions the sorted finger set into a
/// non-interfering selection and the remainder.
///
/// The circuit is cut into groups of 2Ω live units; the first finger of each
/// even-numbered group forms `F_even`, of each odd-numbered group `F_odd`;
/// the larger set wins. Selected fingers are pairwise ≥ 2Ω apart in logical
/// distance (Lemma 5), and at least a 1/(4Ω) fraction of all fingers is
/// selected (Lemma 1).
pub fn select_fingers<U: Clone + Send + Sync>(
    circuit: &SparseCircuit<U>,
    fingers: &[usize],
    omega: usize,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(fingers.windows(2).all(|w| w[0] < w[1]), "fingers sorted");
    if fingers.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let group_width = 2 * omega;
    // O(|F| lg n) work, O(lg n) span: each finger's logical position.
    let groups: Vec<usize> = fingers
        .par_iter()
        .map(|&f| circuit.before(f) / group_width)
        .collect();

    let mut even: Vec<usize> = Vec::new();
    let mut odd: Vec<usize> = Vec::new();
    for i in 0..fingers.len() {
        let first_in_group = i == 0 || groups[i] > groups[i - 1];
        if first_in_group {
            if groups[i].is_multiple_of(2) {
                even.push(i);
            } else {
                odd.push(i);
            }
        }
    }
    let chosen = if even.len() > odd.len() { even } else { odd };

    let mut mask = vec![false; fingers.len()];
    for &i in &chosen {
        mask[i] = true;
    }
    let mut selected = Vec::with_capacity(chosen.len());
    let mut remaining = Vec::with_capacity(fingers.len() - chosen.len());
    for (i, &f) in fingers.iter().enumerate() {
        if mask[i] {
            selected.push(f);
        } else {
            remaining.push(f);
        }
    }
    (selected, remaining)
}

/// `mergeAndDeduplicate` (Algorithm 3): merges two sorted finger lists,
/// dropping duplicates. O(|a| + |b|).
pub fn merge_dedup(a: &[usize], b: &[usize]) -> Vec<usize> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit_of(n: usize) -> SparseCircuit<u32> {
        SparseCircuit::create((0..n as u32).collect())
    }

    #[test]
    fn merge_dedup_basics() {
        assert_eq!(merge_dedup(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_dedup(&[], &[4]), vec![4]);
        assert_eq!(merge_dedup(&[4], &[]), vec![4]);
        assert_eq!(merge_dedup(&[], &[]), Vec::<usize>::new());
    }

    #[test]
    fn selected_fingers_are_non_interfering() {
        let omega = 4;
        let c = circuit_of(100);
        let fingers: Vec<usize> = (0..100).step_by(3).collect();
        let (sel, rem) = select_fingers(&c, &fingers, omega);
        assert_eq!(sel.len() + rem.len(), fingers.len());
        assert!(!sel.is_empty());
        // Lemma 5: pairwise logical distance >= 2Ω.
        for w in sel.windows(2) {
            let d = c.before(w[1]) - c.before(w[0]);
            assert!(d >= 2 * omega, "fingers {w:?} only {d} apart");
        }
        // Lemma 1: at least |F|/(4Ω) selected.
        assert!(sel.len() * 4 * omega >= fingers.len());
    }

    #[test]
    fn selection_respects_tombstones() {
        let omega = 2;
        let mut c = circuit_of(40);
        // Tombstone a band so logical positions compress.
        c.substitute((10..30).map(|i| (i, None)).collect());
        let fingers: Vec<usize> = vec![0, 5, 12, 20, 28, 35, 39];
        let (sel, _rem) = select_fingers(&c, &fingers, omega);
        for w in sel.windows(2) {
            let d = c.before(w[1]) - c.before(w[0]);
            assert!(d >= 2 * omega, "fingers {w:?} only {d} apart (logical)");
        }
    }

    #[test]
    fn singleton_and_empty() {
        let c = circuit_of(10);
        let (sel, rem) = select_fingers(&c, &[], 2);
        assert!(sel.is_empty() && rem.is_empty());
        let (sel, rem) = select_fingers(&c, &[3], 2);
        assert_eq!(sel, vec![3]);
        assert!(rem.is_empty());
    }

    #[test]
    fn partition_is_exact() {
        let c = circuit_of(64);
        let fingers: Vec<usize> = (0..64).step_by(2).collect();
        let (sel, rem) = select_fingers(&c, &fingers, 3);
        let merged = merge_dedup(&sel, &rem);
        assert_eq!(merged, fingers);
    }
}
