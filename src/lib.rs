//! # popqc — Parallel Optimization for Quantum Circuits
//!
//! A complete, self-contained Rust reproduction of **"POPQC: Parallel
//! Optimization for Quantum Circuits"** (Liu, Arora, Xu, Acar — SPAA 2025).
//!
//! POPQC optimizes a quantum circuit by maintaining a set of *fingers* —
//! positions near which optimization may still be possible — and, in rounds,
//! optimizing the 2Ω-gate segments around non-interfering fingers in
//! parallel with an external *oracle* optimizer. The output is *locally
//! optimal*: no Ω-gate window can be improved by the oracle. For constant Ω
//! the algorithm does `O(n lg n)` work with `O(r lg n)` span.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `qcir` | gates, exact angles, circuits, layers, QASM |
//! | [`sim`] | `qsim` | state-vector simulator and equivalence checks |
//! | [`oracles`] | `qoracle` | rule-based (VOQC-style) and search (Quartz-style) oracles |
//! | [`core`] | `popqc-core` | index tree, sparse circuit, finger engine |
//! | [`baseline`] | `oac` | sequential cut-meld-compress baseline |
//! | [`benchmarks`] | `benchgen` | the paper's eight benchmark families + the `skewed` executor workload |
//! | [`api`] | `popqc-api` | versioned public API: v1 DTOs, `ApiError` taxonomy, wire format |
//! | [`exec`] | `popqc-exec` | work-stealing executor: the global pool every parallel hot path runs on |
//! | [`service`] | `popqc-svc` | batch optimization service: oracle registry + job scheduling + result cache + coalescing |
//! | [`http`] | `popqc-http` | HTTP/1.1 frontend: the v1 JSON endpoints over the service |
//!
//! ## Quick start
//!
//! ```
//! use popqc::prelude::*;
//!
//! // Generate a benchmark circuit and optimize it with POPQC.
//! let circuit = Family::Vqe.generate(12, 42);
//! let oracle = RuleBasedOptimizer::oracle();
//! let (optimized, stats) = optimize_circuit(&circuit, &oracle, &PopqcConfig::with_omega(100));
//!
//! assert!(optimized.len() < circuit.len());
//! println!(
//!     "reduced {} -> {} gates in {} rounds ({} oracle calls)",
//!     circuit.len(), optimized.len(), stats.rounds, stats.oracle_calls
//! );
//! ```

pub use benchgen as benchmarks;
pub use oac as baseline;
pub use popqc_core as core;
pub use qapi as api;
pub use qcir as ir;
pub use qexec as exec;
pub use qhttp as http;
pub use qoracle as oracles;
pub use qsim as sim;
pub use qsvc as service;

/// The types most programs need, in one import.
pub mod prelude {
    pub use benchgen::Family;
    pub use oac::{oac_optimize, OacConfig, OacStats};
    pub use popqc_core::{
        optimize_circuit, optimize_layered, verify_local_optimality, PopqcConfig, PopqcStats,
    };
    pub use qapi::ApiError;
    pub use qcir::{Angle, Circuit, Fingerprint, Gate, Layer, LayeredCircuit, Qubit};
    pub use qoracle::{
        CostFn, GateCount, LayerSearchOracle, MixedDepthGates, RuleBasedOptimizer, SearchOptimizer,
        SegmentOracle,
    };
    pub use qsvc::{
        build_store, BatchHandle, BatchResult, CacheServer, CacheServerConfig, DiskStore,
        JobHandle, JobKey, JobRequest, JobResult, MemoryStore, NullStore, OptimizationService,
        OracleRegistry, RemoteConfig, RemoteStore, ResultStore, ServiceConfig, ServiceError,
        ServiceStats, StoreTier, TieredStore,
    };
}
