//! The `popqc` CLI: batch-optimize QASM circuits through the optimization
//! service.
//!
//! ```text
//! popqc optimize <FILE|DIR>... [--out DIR] [--omega N] [--oracle ID]
//!                [--workers N] [--threads-per-job N] [--grain N]
//!                [--cache-capacity N] [--seg-cache-capacity N]
//!                [--cache-tier memory|disk|tiered|remote|null]
//!                [--cache-dir DIR] [--cache-addr HOST:PORT]
//!                [--repeat N] [--report FILE] [--json] [--verify] [--quiet]
//!                [--log-level error|warn|info|debug]
//! popqc serve [--addr HOST:PORT] [--workers N] [--threads-per-job N]
//!             [--omega N] [--oracle ID] [--cache-capacity N]
//!             [--seg-cache-capacity N] [--frontend threads|evented]
//!             [--conn-threads N] [--max-conns N] [--rate-limit R]
//!             [--shed-queue-depth N] [--grain N]
//!             [--cache-tier memory|disk|tiered|remote|null]
//!             [--cache-dir DIR] [--cache-addr HOST:PORT]
//!             [--trace-capacity N] [--trace-slow-ms MS]
//!             [--log-level error|warn|info|debug]
//! popqc trace <ID|last> [--addr HOST:PORT] [--chrome]
//! popqc cached [--addr HOST:PORT] --cache-dir DIR [--cache-tier disk|tiered]
//!              [--cache-capacity N] [--max-conns N]
//!              [--log-level error|warn|info|debug]
//! popqc cache stats --cache-dir DIR
//! popqc cache clear --cache-dir DIR
//! popqc cache warm <FILE|DIR>... --cache-dir DIR [--omega N] [--oracle ID]
//! popqc gen --family NAME --qubits N [--seed S] [--out FILE|DIR]
//! popqc oracles
//! popqc families
//! ```
//!
//! `optimize` ingests `.qasm` files (directories are scanned for them),
//! submits every circuit as a job to an in-process [`OptimizationService`],
//! writes each optimized circuit as QASM under `--out`, and emits the
//! versioned `popqc-api` report with per-job and service-level
//! cache/oracle accounting. `--json` prints one `JobStatus` document per
//! job to stdout — the exact DTO the HTTP frontend serves, built by the
//! same adapter, so the two surfaces are byte-identical for the same job.
//! `--repeat N` resubmits the same batch N times in-process — pass 2+
//! should be pure cache hits with zero new oracle calls, which the report
//! makes auditable. `--verify` equivalence-checks outputs on small
//! circuits via the state-vector simulator.
//!
//! `--oracle` names an [`OracleRegistry`] id (see `popqc oracles`); the
//! server keeps every registered oracle live and uses `--oracle` only as
//! the default for requests that do not select one.
//!
//! `--seg-cache-capacity` sizes the engine-level segment cache (see
//! `qsvc::segcache`): per-*segment* rewrites are memoized inside the
//! engine hot path, keyed angle-abstractly for angle-independent oracles
//! (`structural`) so parameterized resubmissions reuse every
//! structurally-unchanged segment's rewrite without new oracle calls.
//! The CLI default is 4096 entries; `0` disables it.
//!
//! `--cache-tier`/`--cache-dir`/`--cache-addr` pick the result-store
//! backend (see `qsvc::store`): `tiered` or `disk` over a directory makes
//! warm starts survive process restarts, `remote` (or `tiered` over
//! `--cache-addr`) shares one `popqc cached` server across a replica
//! fleet, and `popqc cache {stats,clear,warm}` administers a cache
//! directory offline.
//!
//! `cached` runs the shared cache server itself: it serves the
//! `qsvc::wire` protocol over a disk-backed store at `--cache-dir`, so
//! any number of `popqc serve --cache-addr` replicas warm one another. A
//! replica whose cache server goes down degrades to local misses (never
//! errors) and resumes hits when it returns.
//!
//! Parallelism runs on the shared `popqc-exec` work-stealing pool.
//! `POPQC_NUM_THREADS` pins every parallel width (it outranks `--workers`
//! and `--threads-per-job` defaults — see `qexec::resolve_threads`), and
//! `--grain` (or `POPQC_GRAIN`) fixes the executor's leaf-task size in
//! items, `0`/unset meaning adaptive splitting. The executor's counters
//! are reported in `GET /v1/stats` and the `--report` document.
//!
//! `--trace-capacity`/`--trace-slow-ms` tune the request tracer (see
//! `qobs::trace`): the server keeps up to N tail-sampled traces in a
//! ring (`0` disables tracing entirely) and always keeps traces slower
//! than the threshold. `popqc trace <ID|last>` fetches a kept trace from
//! a running server and prints its span tree (`--chrome` emits Chrome
//! `trace_event` JSON for chrome://tracing instead).
//!
//! `--log-level` installs a `popqc-obs` log filter — a bare level
//! (`error|warn|info|debug`) or a full spec with per-target overrides
//! like `info,qexec=debug`. When the flag is absent the `POPQC_LOG`
//! environment variable is honored instead; the default is `info`.

use popqc::prelude::*;
use popqc::service::report::{batch_report, cache_report, job_status, service_report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         popqc optimize <FILE|DIR>... [--out DIR] [--omega N] [--oracle ID]\n           \
         [--workers N] [--threads-per-job N] [--grain N] [--cache-capacity N]\n           \
         [--seg-cache-capacity N]\n           \
         [--cache-tier memory|disk|tiered|remote|null] [--cache-dir DIR]\n           \
         [--cache-addr HOST:PORT]\n           \
         [--repeat N] [--report FILE] [--json] [--verify] [--quiet]\n           \
         [--log-level error|warn|info|debug]\n  \
         popqc serve [--addr HOST:PORT] [--workers N] [--threads-per-job N]\n           \
         [--omega N] [--oracle ID] [--cache-capacity N] [--seg-cache-capacity N]\n           \
         [--frontend threads|evented] [--conn-threads N] [--max-conns N]\n           \
         [--rate-limit REQS_PER_SEC] [--shed-queue-depth N]\n           \
         [--grain N] [--cache-tier memory|disk|tiered|remote|null]\n           \
         [--cache-dir DIR] [--cache-addr HOST:PORT]\n           \
         [--trace-capacity N] [--trace-slow-ms MS]\n           \
         [--log-level error|warn|info|debug]\n  \
         popqc trace <ID|last> [--addr HOST:PORT] [--chrome]\n  \
         popqc cached [--addr HOST:PORT] --cache-dir DIR [--cache-tier disk|tiered]\n           \
         [--cache-capacity N] [--max-conns N] [--log-level error|warn|info|debug]\n  \
         popqc cache stats --cache-dir DIR\n  \
         popqc cache clear --cache-dir DIR\n  \
         popqc cache warm <FILE|DIR>... --cache-dir DIR [--omega N] [--oracle ID]\n           \
         [--workers N] [--threads-per-job N]\n  \
         popqc gen --family NAME --qubits N [--seed S] [--out FILE|DIR]\n  \
         popqc oracles\n  \
         popqc families"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("popqc: error: {msg}");
    std::process::exit(1);
}

/// Installs the log filter: the `--log-level` spec when given (a bare
/// level or `target=level` overrides, see `qobs::set_log_filter`), else
/// whatever `POPQC_LOG` says. An unknown level name is a diagnostic and
/// exit 1 listing the accepted names — same refusal style as
/// `--cache-tier`.
fn apply_log_filter(flag: Option<&str>) {
    match flag {
        Some(spec) => qobs::set_log_filter(spec),
        None => qobs::set_log_filter_from_env(),
    }
    .unwrap_or_else(|e| fail(e));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("cached") => cmd_cached(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("oracles") => cmd_oracles(),
        Some("families") => cmd_families(),
        _ => usage(),
    }
}

/// Resolves `--cache-tier`/`--cache-dir`/`--cache-addr` into a built
/// store. An explicit `--cache-dir` without a tier implies `tiered` over
/// disk (the obvious intent: memory-speed hits backed by
/// restart-surviving disk), and a bare `--cache-addr` likewise implies
/// `tiered` over remote. Every misconfiguration is a diagnostic and exit
/// 1, never a panic or a silent ignore: unknown tier names, a persistent
/// tier without a directory, a remote tier without an address, and a
/// directory or address paired with a tier that cannot use it (the user
/// asked for something they would not get).
fn build_cli_store(
    tier: Option<&str>,
    dir: Option<&std::path::Path>,
    addr: Option<&str>,
    capacity: usize,
    shards: usize,
) -> std::sync::Arc<dyn ResultStore> {
    let tier: StoreTier = match tier {
        Some(name) => name.parse().unwrap_or_else(|e: String| fail(e)),
        None if dir.is_some() || addr.is_some() => StoreTier::Tiered,
        None => StoreTier::Memory,
    };
    if dir.is_some()
        && matches!(
            tier,
            StoreTier::Memory | StoreTier::Null | StoreTier::Remote
        )
    {
        fail(format!(
            "cache tier `{tier}` does not persist to --cache-dir (use `disk` or `tiered`, \
             or drop --cache-dir)"
        ));
    }
    if addr.is_some() && !matches!(tier, StoreTier::Remote | StoreTier::Tiered) {
        fail(format!(
            "cache tier `{tier}` does not talk to a cache server (use `remote` or `tiered`, \
             or drop --cache-addr)"
        ));
    }
    build_store(tier, dir, addr, capacity, shards).unwrap_or_else(|e| fail(e))
}

fn cmd_families() -> ExitCode {
    for f in Family::ALL {
        println!("{}", f.name().to_lowercase());
    }
    ExitCode::SUCCESS
}

fn cmd_oracles() -> ExitCode {
    for info in OracleRegistry::builtin().infos() {
        println!(
            "{}{}  {}",
            info.id,
            if info.default { " (default)" } else { "" },
            info.description
        );
    }
    ExitCode::SUCCESS
}

/// The built-in registry with `--oracle` applied as the default id.
/// Accepts the legacy spellings `rule` and `rule-fixpoint` for
/// `rule_based`. Unknown ids fail with the available list.
fn registry_with_default(oracle: &str) -> OracleRegistry {
    let canonical = match oracle {
        "rule" | "rule-fixpoint" => "rule_based",
        other => other,
    };
    let mut registry = OracleRegistry::builtin();
    registry
        .set_default(canonical)
        .unwrap_or_else(|e| fail(format!("{e}; see `popqc oracles`")));
    registry
}

fn parse_family(name: &str) -> Family {
    Family::ALL
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            fail(format!(
                "unknown family `{name}` (see `popqc families` for the list)"
            ))
        })
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(v) = value else {
        fail(format!("{flag} requires a value"));
    };
    v.parse()
        .unwrap_or_else(|_| fail(format!("cannot parse {flag} value `{v}`")))
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut family: Option<Family> = None;
    let mut qubits: Option<u32> = None;
    let mut seed: u64 = 42;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--family" => {
                family = Some(parse_family(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--qubits" => {
                qubits = Some(parse_num("--qubits", args.get(i + 1)));
                i += 2;
            }
            "--seed" => {
                seed = parse_num("--seed", args.get(i + 1));
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            _ => usage(),
        }
    }
    let (Some(family), Some(qubits)) = (family, qubits) else {
        usage();
    };
    if qubits < family.min_qubits() {
        fail(format!(
            "{} needs at least {} qubits (got {qubits})",
            family.name(),
            family.min_qubits()
        ));
    }
    let circuit = family.generate(qubits, seed);
    let qasm = popqc::ir::qasm::to_qasm(&circuit);
    match out {
        None => {
            print!("{qasm}");
        }
        Some(path) => {
            let path = if path.is_dir() {
                path.join(format!(
                    "{}-{qubits}-s{seed}.qasm",
                    family.name().to_lowercase()
                ))
            } else {
                path
            };
            std::fs::write(&path, qasm)
                .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", path.display())));
            eprintln!(
                "wrote {} ({} gates, {} qubits)",
                path.display(),
                circuit.len(),
                circuit.num_qubits
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut omega: usize = 200;
    let mut grain: usize = 0;
    let mut oracle = "rule_based".to_string();
    // The library default keeps the segment cache off; the CLI turns it
    // on (`--seg-cache-capacity 0` opts back out).
    let mut svc_cfg = ServiceConfig {
        seg_cache_capacity: 4096,
        ..ServiceConfig::default()
    };
    let mut http_cfg = popqc::http::ServerConfig::default();
    let mut frontend = "evented".to_string();
    let mut conn_threads: Option<usize> = None;
    let mut max_conns: Option<usize> = None;
    let mut rate_limit: Option<f64> = None;
    let mut shed_queue_depth: Option<usize> = None;
    let mut cache_tier: Option<String> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_addr: Option<String> = None;
    let mut trace_capacity: usize = 256;
    let mut trace_slow_ms: u64 = 1000;
    let mut log_level: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--log-level" => {
                log_level = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--trace-capacity" => {
                trace_capacity = parse_num("--trace-capacity", args.get(i + 1));
                i += 2;
            }
            "--trace-slow-ms" => {
                trace_slow_ms = parse_num("--trace-slow-ms", args.get(i + 1));
                i += 2;
            }
            "--cache-tier" => {
                cache_tier = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--cache-addr" => {
                cache_addr = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--addr" => {
                addr = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--workers" => {
                svc_cfg.workers = parse_num("--workers", args.get(i + 1));
                i += 2;
            }
            "--threads-per-job" => {
                svc_cfg.threads_per_job = parse_num("--threads-per-job", args.get(i + 1));
                i += 2;
            }
            "--cache-capacity" => {
                svc_cfg.cache_capacity = parse_num("--cache-capacity", args.get(i + 1));
                i += 2;
            }
            "--seg-cache-capacity" => {
                svc_cfg.seg_cache_capacity = parse_num("--seg-cache-capacity", args.get(i + 1));
                i += 2;
            }
            "--frontend" => {
                frontend = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--conn-threads" => {
                conn_threads = Some(parse_num("--conn-threads", args.get(i + 1)));
                i += 2;
            }
            "--max-conns" => {
                max_conns = Some(parse_num("--max-conns", args.get(i + 1)));
                i += 2;
            }
            "--rate-limit" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                rate_limit = Some(v.parse::<f64>().unwrap_or_else(|_| {
                    fail(format!("bad --rate-limit `{v}` (need requests/second)"))
                }));
                i += 2;
            }
            "--shed-queue-depth" => {
                shed_queue_depth = Some(parse_num("--shed-queue-depth", args.get(i + 1)));
                i += 2;
            }
            "--omega" => {
                omega = parse_num("--omega", args.get(i + 1));
                i += 2;
            }
            "--grain" => {
                grain = parse_num("--grain", args.get(i + 1));
                i += 2;
            }
            "--oracle" => {
                oracle = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            _ => usage(),
        }
    }
    if omega == 0 || conn_threads == Some(0) {
        usage();
    }
    if frontend == "threads" {
        // These knobs live in the evented connection layer; silently
        // ignoring them would fake protection that isn't there.
        for (flag, set) in [
            ("--max-conns", max_conns.is_some()),
            ("--rate-limit", rate_limit.is_some()),
            ("--shed-queue-depth", shed_queue_depth.is_some()),
        ] {
            if set {
                fail(format!("{flag} requires --frontend evented"));
            }
        }
    } else if frontend != "evented" {
        fail(format!(
            "bad --frontend `{frontend}` (use threads or evented)"
        ));
    }
    // The filter must be live before the service spins up so startup
    // events (and worker logs) already respect it.
    apply_log_filter(log_level.as_deref());
    // Executor tuning before any parallel work runs: 0 keeps the
    // adaptive default (or POPQC_GRAIN).
    qexec::set_grain(grain);
    // Tracer config before the first request can start a trace.
    qobs::trace::configure(
        trace_capacity,
        std::time::Duration::from_millis(trace_slow_ms),
        16,
    );

    // One dynamically dispatched service over the whole registry: every
    // oracle stays selectable per request, `--oracle` only picks the
    // default for requests that name none. The result store is the one
    // seam `--cache-tier` swaps; nothing else changes between memory,
    // disk, and tiered deployments.
    let store = build_cli_store(
        cache_tier.as_deref(),
        cache_dir.as_deref(),
        cache_addr.as_deref(),
        svc_cfg.cache_capacity,
        svc_cfg.cache_shards,
    );
    let backend = store.stats().backend;
    let seg_cache_capacity = svc_cfg.seg_cache_capacity;
    let svc = OptimizationService::with_store(registry_with_default(&oracle), svc_cfg, store);
    let workers = svc.workers();
    let threads_per_job = svc.threads_per_job();
    let oracle_ids = svc
        .registry()
        .ids()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let default_oracle = svc.registry().default_id().to_string();
    let state = std::sync::Arc::new(popqc::http::AppState::new(svc, omega));
    // Both variants stay alive until the process dies (dropping either
    // shuts it down); only the address escapes the match.
    enum Running {
        Threads(popqc::http::HttpServer),
        Evented(popqc::http::EventedServer),
    }
    let server = if frontend == "threads" {
        if let Some(n) = conn_threads {
            http_cfg.conn_threads = n;
        }
        let s = popqc::http::HttpServer::serve(&addr, std::sync::Arc::clone(&state), http_cfg)
            .unwrap_or_else(|e| fail(format!("cannot bind {addr}: {e}")));
        state.set_frontend_probe(s.probe());
        Running::Threads(s)
    } else {
        let mut ev_cfg = popqc::http::EventedConfig {
            read_deadline: http_cfg.read_timeout,
            ..popqc::http::EventedConfig::default()
        };
        if let Some(n) = conn_threads {
            ev_cfg.loop_threads = n;
        }
        if let Some(n) = max_conns {
            ev_cfg.max_conns = n;
        }
        if let Some(r) = rate_limit {
            ev_cfg.rate_limit = r;
        }
        if let Some(n) = shed_queue_depth {
            ev_cfg.shed_queue_depth = n;
        }
        let s = popqc::http::EventedServer::serve(&addr, std::sync::Arc::clone(&state), ev_cfg)
            .unwrap_or_else(|e| fail(format!("cannot bind {addr}: {e}")));
        Running::Evented(s)
    };
    let local_addr = match &server {
        Running::Threads(s) => s.local_addr(),
        Running::Evented(s) => s.local_addr(),
    };
    // The address stays an unquoted `addr=http://…` value so scripts (and
    // the CLI tests) can still extract the resolved ephemeral port by
    // grepping stderr for `http://`.
    qobs::log_info!(
        target: "popqc::serve",
        "listening",
        addr = format_args!("http://{}", local_addr),
        frontend = frontend,
        workers = workers,
        threads_per_job = threads_per_job,
        omega = omega
    );
    if matches!(server, Running::Evented(_)) {
        qobs::log_info!(
            target: "popqc::serve",
            "admission control",
            max_conns = max_conns.unwrap_or(popqc::http::EventedConfig::default().max_conns),
            rate_limit = rate_limit.unwrap_or(0.0),
            shed_queue_depth = shed_queue_depth.unwrap_or(0)
        );
    }
    qobs::log_info!(
        target: "popqc::serve",
        "oracles",
        available = oracle_ids,
        default = default_oracle
    );
    match (&cache_dir, &cache_addr) {
        (Some(dir), _) => qobs::log_info!(
            target: "popqc::serve",
            "result store",
            backend = backend,
            dir = dir.display()
        ),
        (None, Some(remote)) => qobs::log_info!(
            target: "popqc::serve",
            "result store",
            backend = backend,
            cache_server = remote
        ),
        (None, None) => qobs::log_info!(target: "popqc::serve", "result store", backend = backend),
    }
    match seg_cache_capacity {
        0 => qobs::log_info!(target: "popqc::serve", "segment cache", state = "disabled"),
        cap => qobs::log_info!(target: "popqc::serve", "segment cache", capacity = cap),
    }
    match trace_capacity {
        0 => qobs::log_info!(target: "popqc::serve", "tracing", state = "disabled"),
        cap => qobs::log_info!(
            target: "popqc::serve",
            "tracing",
            capacity = cap,
            slow_ms = trace_slow_ms
        ),
    }
    match qexec::configured_grain() {
        0 => qobs::log_info!(
            target: "popqc::serve",
            "executor",
            pool = "work-stealing",
            grain = "adaptive"
        ),
        g => qobs::log_info!(
            target: "popqc::serve",
            "executor",
            pool = "work-stealing",
            grain = g
        ),
    }
    qobs::log_info!(
        target: "popqc::serve",
        "endpoints",
        routes = "POST /v1/optimize  POST /v1/batch  GET /v1/jobs/{id}  GET /v1/oracles  \
                  GET /v1/stats  GET /v1/metrics  GET|DELETE /v1/cache  GET /v1/traces  \
                  GET /v1/traces/{id}  GET /v1/version  GET /healthz"
    );
    // Serve until the process is killed; the acceptor threads own the work.
    loop {
        std::thread::park();
    }
}

/// One blocking `GET` against a running server, no HTTP client crate:
/// `Connection: close` + read-to-EOF keeps the framing trivial. Returns
/// `(status, body)`; any transport or parse failure is a diagnostic and
/// exit 1 (the server not running is the common case).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        fail(format!(
            "cannot connect to {addr}: {e} (is `popqc serve` running?)"
        ))
    });
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap_or_else(|e| fail(format!("cannot send request to {addr}: {e}")));
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .unwrap_or_else(|e| fail(format!("cannot read response from {addr}: {e}")));
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        fail(format!("malformed HTTP response from {addr}"));
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| fail(format!("malformed HTTP status line from {addr}")));
    (status, body.to_string())
}

/// `popqc trace <ID|last>` — fetches one kept trace from a running
/// server and prints its span tree (or, with `--chrome`, the Chrome
/// `trace_event` JSON on stdout, ready for chrome://tracing).
fn cmd_trace(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut chrome = false;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--chrome" => {
                chrome = true;
                i += 1;
            }
            flag if flag.starts_with("--") => usage(),
            id if target.is_none() => {
                target = Some(id.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(target) = target else { usage() };
    let id = if target == "last" {
        let (status, body) = http_get(&addr, "/v1/traces?limit=1");
        if status != 200 {
            fail(format!("GET /v1/traces answered {status}"));
        }
        let doc = serde_json::from_str(&body)
            .unwrap_or_else(|e| fail(format!("cannot parse trace index: {e}")));
        let index = popqc::api::TraceIndex::from_json(&doc)
            .unwrap_or_else(|e| fail(format!("cannot parse trace index: {e}")));
        match index.traces.first() {
            Some(t) => t.trace_id.clone(),
            None => fail(
                "no traces kept yet (force one with `?trace=1` on POST /v1/optimize, \
                 or lower --trace-slow-ms)",
            ),
        }
    } else {
        target
    };
    let path = if chrome {
        format!("/v1/traces/{id}?format=chrome")
    } else {
        format!("/v1/traces/{id}")
    };
    let (status, body) = http_get(&addr, &path);
    match status {
        200 => {}
        404 => fail(format!(
            "trace {id} not found (not kept by tail sampling, or evicted from the ring)"
        )),
        other => fail(format!("GET {path} answered {other}")),
    }
    if chrome {
        // Raw JSON on stdout: `popqc trace last --chrome > trace.json`,
        // then load trace.json in chrome://tracing.
        println!("{body}");
        return ExitCode::SUCCESS;
    }
    let doc = serde_json::from_str(&body)
        .unwrap_or_else(|e| fail(format!("cannot parse trace report: {e}")));
    let report = popqc::api::TraceReport::from_json(&doc)
        .unwrap_or_else(|e| fail(format!("cannot parse trace report: {e}")));
    let ms = |nanos: u64| nanos as f64 / 1e6;
    println!(
        "trace {} status={} kept={} duration={:.3}ms spans={}{}",
        report.trace_id,
        report.status,
        report.sampled_because,
        ms(report.duration_nanos),
        report.spans.len(),
        if report.dropped_spans > 0 {
            format!(" (+{} dropped)", report.dropped_spans)
        } else {
            String::new()
        }
    );
    println!(
        "split: queue={:.3}ms engine={:.3}ms oracle={:.3}ms store={:.3}ms",
        ms(report.queue_nanos),
        ms(report.engine_nanos),
        ms(report.oracle_nanos),
        ms(report.store_nanos)
    );
    print_span_tree(&report.spans, 0, 0);
    ExitCode::SUCCESS
}

/// Prints `spans` as an indented tree under `parent`, children in start
/// order. Orphans (parents lost to the span cap) are simply not printed;
/// the header's dropped count already announces them.
fn print_span_tree(spans: &[popqc::api::TraceSpan], parent: u64, depth: usize) {
    let mut children: Vec<&popqc::api::TraceSpan> = spans
        .iter()
        .filter(|s| s.parent == parent && s.id != parent)
        .collect();
    children.sort_by_key(|s| s.start_nanos);
    for span in children {
        let attrs = span
            .attrs
            .iter()
            .map(|(k, v)| {
                format!(
                    " {k}={}",
                    serde_json::to_string(v).unwrap_or_else(|_| "?".to_string())
                )
            })
            .collect::<String>();
        println!(
            "{:indent$}{} {:.3}ms{}",
            "",
            span.name,
            span.duration_nanos as f64 / 1e6,
            attrs,
            indent = depth * 2
        );
        print_span_tree(spans, span.id, depth + 1);
    }
}

/// `popqc cached` — the shared fleet cache server. Serves the
/// `qsvc::wire` protocol over a disk-backed store at `--cache-dir`
/// (`tiered` by default, so hot entries answer from memory; `disk`
/// serves straight from the files). Replicas point `--cache-addr` here;
/// the tagged entry encoding lets this process refuse stale writes from
/// replicas running an older store format or oracle version.
fn cmd_cached(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7979".to_string();
    let mut cache_tier: Option<String> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_capacity: usize = 1024;
    let mut server_cfg = CacheServerConfig::default();
    let mut log_level: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--cache-tier" => {
                cache_tier = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--cache-capacity" => {
                cache_capacity = parse_num("--cache-capacity", args.get(i + 1));
                i += 2;
            }
            "--max-conns" => {
                server_cfg.max_conns = parse_num("--max-conns", args.get(i + 1));
                i += 2;
            }
            "--log-level" => {
                log_level = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    apply_log_filter(log_level.as_deref());
    let Some(cache_dir) = cache_dir else {
        fail("--cache-dir is required (the cache server is the fleet's persistent tier)");
    };
    // The server *is* the authoritative tier, so it must persist: only
    // disk-backed tiers make sense here (serving `remote` would chain
    // cache servers, and `memory` would silently drop the fleet's
    // warmth on restart).
    let tier: StoreTier = match cache_tier.as_deref() {
        None => StoreTier::Tiered,
        Some(name) => match name.parse().unwrap_or_else(|e: String| fail(e)) {
            t @ (StoreTier::Disk | StoreTier::Tiered) => t,
            t => fail(format!(
                "cache tier `{t}` cannot back a cache server (use `disk` or `tiered`)"
            )),
        },
    };
    let store =
        build_store(tier, Some(&cache_dir), None, cache_capacity, 0).unwrap_or_else(|e| fail(e));
    let backend = store.stats().backend;
    let entries = store.len();
    let server = CacheServer::serve(&addr, store, server_cfg)
        .unwrap_or_else(|e| fail(format!("cannot bind {addr}: {e}")));
    // Like `serve`, the address stays an unquoted `addr=…` value so
    // scripts can grep the resolved ephemeral port from stderr.
    qobs::log_info!(
        target: "popqc::cached",
        "cache server listening",
        addr = server.local_addr(),
        backend = backend,
        dir = cache_dir.display(),
        entries = entries
    );
    // Serve until the process is killed; the acceptor thread owns the work.
    loop {
        std::thread::park();
    }
}

/// `popqc cache {stats,clear,warm}` — admin access to the *persistent*
/// tier. `stats` and `clear` open the disk store at `--cache-dir`
/// directly (the memory tiers of running services are per-process and
/// reachable over `GET /v1/cache` instead); `warm` pre-populates the disk
/// tier by optimizing a directory of circuits through a service backed by
/// it.
fn cmd_cache(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("stats") => cmd_cache_stats(&args[1..]),
        Some("clear") => cmd_cache_clear(&args[1..]),
        Some("warm") => cmd_cache_warm(&args[1..]),
        _ => usage(),
    }
}

/// Parses the one flag `stats`/`clear` take and opens the disk store.
fn open_disk_store(args: &[String]) -> DiskStore {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(dir) = dir else {
        fail("--cache-dir is required");
    };
    if !dir.is_dir() {
        fail(format!("cache dir {} does not exist", dir.display()));
    }
    DiskStore::open(&dir).unwrap_or_else(|e| fail(format!("cannot open {}: {e}", dir.display())))
}

fn cmd_cache_stats(args: &[String]) -> ExitCode {
    let store = open_disk_store(args);
    let report = cache_report(&store.stats());
    // Human-readable summary on stderr; stdout stays the machine-parsable
    // JSON document (scripts pipe it), same split as the log lines.
    eprintln!(
        "cache: backend={} entries={} hits={} misses={} evictions={} bytes={}",
        report.backend, report.entries, report.hits, report.misses, report.evictions, report.bytes
    );
    eprintln!(
        "{:<8} {:>9} {:>9} {:>9} {:>10} {:>12} {:>7}",
        "tier", "entries", "hits", "misses", "evictions", "bytes", "errors"
    );
    for t in &report.tiers {
        eprintln!(
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>12} {:>7}",
            t.tier, t.entries, t.hits, t.misses, t.evictions, t.bytes, t.errors
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&report.to_json()).expect("serialize cache report")
    );
    ExitCode::SUCCESS
}

fn cmd_cache_clear(args: &[String]) -> ExitCode {
    let store = open_disk_store(args);
    let removed = ResultStore::clear(&store);
    let doc = popqc::api::CacheClearResponse {
        cleared: true,
        entries_removed: removed,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&doc.to_json()).expect("serialize clear response")
    );
    ExitCode::SUCCESS
}

fn cmd_cache_warm(args: &[String]) -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut cache_dir: Option<PathBuf> = None;
    let mut omega: usize = 200;
    let mut oracle = "rule_based".to_string();
    let mut svc_cfg = ServiceConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--omega" => {
                omega = parse_num("--omega", args.get(i + 1));
                i += 2;
            }
            "--oracle" => {
                oracle = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--workers" => {
                svc_cfg.workers = parse_num("--workers", args.get(i + 1));
                i += 2;
            }
            "--threads-per-job" => {
                svc_cfg.threads_per_job = parse_num("--threads-per-job", args.get(i + 1));
                i += 2;
            }
            flag if flag.starts_with("--") => usage(),
            path => {
                inputs.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if inputs.is_empty() || omega == 0 {
        usage();
    }
    let Some(cache_dir) = cache_dir else {
        fail("--cache-dir is required");
    };

    let files = collect_qasm_files(&inputs);
    let mut circuits = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
        circuits.push(
            popqc::ir::qasm::parse(&src)
                .unwrap_or_else(|e| fail(format!("{}: {e}", path.display()))),
        );
    }

    // Warm straight into the persistent tier: disk-only, so every entry
    // lands in the directory (a memory front would only help this
    // short-lived process).
    let store =
        build_store(StoreTier::Disk, Some(&cache_dir), None, 0, 0).unwrap_or_else(|e| fail(e));
    let svc = OptimizationService::with_store(registry_with_default(&oracle), svc_cfg, store);
    let batch = svc
        .submit_batch(circuits, &PopqcConfig::with_omega(omega))
        .wait();
    for (path, result) in files.iter().zip(&batch.results) {
        if let Some(err) = &result.error {
            fail(format!("{}: {err}", path.display()));
        }
    }
    eprintln!(
        "warmed {} circuits into {} ({} oracle calls, {} already cached)",
        batch.results.len(),
        cache_dir.display(),
        batch.oracle_calls_issued(),
        batch.cache_hits(),
    );
    let doc = cache_report(&svc.store().stats()).to_json();
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("serialize cache report")
    );
    ExitCode::SUCCESS
}

struct OptimizeOpts {
    inputs: Vec<PathBuf>,
    out_dir: Option<PathBuf>,
    omega: usize,
    oracle: String,
    workers: usize,
    threads_per_job: usize,
    grain: usize,
    cache_capacity: usize,
    seg_cache_capacity: usize,
    cache_tier: Option<String>,
    cache_dir: Option<PathBuf>,
    cache_addr: Option<String>,
    repeat: usize,
    report: Option<PathBuf>,
    json: bool,
    verify: bool,
    quiet: bool,
    log_level: Option<String>,
}

fn parse_optimize_opts(args: &[String]) -> OptimizeOpts {
    let mut o = OptimizeOpts {
        inputs: Vec::new(),
        out_dir: None,
        omega: 200,
        oracle: "rule_based".to_string(),
        workers: 0,
        threads_per_job: 0,
        grain: 0,
        cache_capacity: 1024,
        // On by default at the CLI surface (the library default is off);
        // `--seg-cache-capacity 0` opts out.
        seg_cache_capacity: 4096,
        cache_tier: None,
        cache_dir: None,
        cache_addr: None,
        repeat: 1,
        report: None,
        json: false,
        verify: false,
        quiet: false,
        log_level: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--log-level" => {
                o.log_level = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--out" => {
                o.out_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--omega" => {
                o.omega = parse_num("--omega", args.get(i + 1));
                i += 2;
            }
            "--oracle" => {
                o.oracle = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--workers" => {
                o.workers = parse_num("--workers", args.get(i + 1));
                i += 2;
            }
            "--threads-per-job" => {
                o.threads_per_job = parse_num("--threads-per-job", args.get(i + 1));
                i += 2;
            }
            "--grain" => {
                o.grain = parse_num("--grain", args.get(i + 1));
                i += 2;
            }
            "--cache-capacity" => {
                o.cache_capacity = parse_num("--cache-capacity", args.get(i + 1));
                i += 2;
            }
            "--seg-cache-capacity" => {
                o.seg_cache_capacity = parse_num("--seg-cache-capacity", args.get(i + 1));
                i += 2;
            }
            "--cache-tier" => {
                o.cache_tier = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--cache-dir" => {
                o.cache_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--cache-addr" => {
                o.cache_addr = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--repeat" => {
                o.repeat = parse_num("--repeat", args.get(i + 1));
                i += 2;
            }
            "--report" => {
                o.report = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--json" => {
                o.json = true;
                i += 1;
            }
            "--verify" => {
                o.verify = true;
                i += 1;
            }
            "--quiet" => {
                o.quiet = true;
                i += 1;
            }
            flag if flag.starts_with("--") => usage(),
            path => {
                o.inputs.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if o.inputs.is_empty() || o.omega == 0 || o.repeat == 0 {
        usage();
    }
    o
}

/// Expands files/directories into a sorted list of `.qasm` files.
fn collect_qasm_files(inputs: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let entries = std::fs::read_dir(input)
                .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", input.display())));
            for entry in entries {
                let path = entry
                    .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", input.display())))
                    .path();
                if path.extension().is_some_and(|x| x == "qasm") {
                    files.push(path);
                }
            }
        } else {
            files.push(input.clone());
        }
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        fail("no .qasm files found in the given paths");
    }
    files
}

fn cmd_optimize(args: &[String]) -> ExitCode {
    let opts = parse_optimize_opts(args);
    apply_log_filter(opts.log_level.as_deref());
    qexec::set_grain(opts.grain);
    let files = collect_qasm_files(&opts.inputs);

    // Outputs are written under --out by basename; two inputs sharing one
    // would silently clobber each other, so reject that up front.
    if opts.out_dir.is_some() {
        let mut names = std::collections::HashSet::new();
        for path in &files {
            let name = path
                .file_name()
                .map(|n| n.to_os_string())
                .unwrap_or_default();
            if !names.insert(name.clone()) {
                fail(format!(
                    "two inputs share the file name `{}`; outputs under --out would \
                     overwrite each other (rename one or run separate batches)",
                    name.to_string_lossy()
                ));
            }
        }
    }

    // Parse every input up front so a malformed file fails fast.
    let mut labels = Vec::new();
    let mut circuits = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
        let circuit = popqc::ir::qasm::parse(&src)
            .unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
        labels.push(
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
        );
        circuits.push(circuit);
    }

    let cfg = PopqcConfig::with_omega(opts.omega);
    let svc_cfg = ServiceConfig {
        workers: opts.workers,
        threads_per_job: opts.threads_per_job,
        cache_capacity: opts.cache_capacity,
        seg_cache_capacity: opts.seg_cache_capacity,
        ..ServiceConfig::default()
    };

    // One dynamically dispatched service; the oracle is a per-request
    // registry id, with `--oracle` applied as the default, and the result
    // store chosen by `--cache-tier`/`--cache-dir` (a disk or tiered
    // store makes `--repeat`-style warm passes survive across runs).
    let store = build_cli_store(
        opts.cache_tier.as_deref(),
        opts.cache_dir.as_deref(),
        opts.cache_addr.as_deref(),
        svc_cfg.cache_capacity,
        svc_cfg.cache_shards,
    );
    let svc = OptimizationService::with_store(registry_with_default(&opts.oracle), svc_cfg, store);
    let report = run_batches(svc, &labels, &circuits, &cfg, &opts, &files);

    if let Some(report_path) = &opts.report {
        let text = serde_json::to_string_pretty(&report.to_json()).expect("serialize report");
        std::fs::write(report_path, text)
            .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", report_path.display())));
        if !opts.quiet {
            eprintln!("report written to {}", report_path.display());
        }
    }
    ExitCode::SUCCESS
}

fn run_batches(
    svc: OptimizationService,
    labels: &[String],
    circuits: &[Circuit],
    cfg: &PopqcConfig,
    opts: &OptimizeOpts,
    files: &[PathBuf],
) -> popqc::api::ServiceReport {
    let mut passes = Vec::new();
    let mut last: Option<BatchResult> = None;
    for pass in 1..=opts.repeat {
        let batch = svc.submit_batch(circuits.iter().cloned(), cfg).wait();
        if !opts.quiet {
            let (gates_in, gates_out) = batch.gate_totals();
            eprintln!(
                "pass {pass}: {} jobs in {:.3}s ({:.1} jobs/s) — {} cache hits, \
                 {} oracle calls, {} -> {} gates",
                batch.results.len(),
                batch.wall_nanos as f64 / 1e9,
                batch.jobs_per_sec(),
                batch.cache_hits(),
                batch.oracle_calls_issued(),
                gates_in,
                gates_out,
            );
        }
        passes.push(batch_report(labels, &batch, pass, false));
        last = Some(batch);
    }
    let batch = last.expect("at least one pass");

    // `--json`: one JobStatus document per job on stdout — the identical
    // DTO (same adapter, same serializer) the HTTP frontend answers with
    // for the same job, ids assigned in submission order like the server.
    if opts.json {
        for (i, (label, result)) in labels.iter().zip(&batch.results).enumerate() {
            let doc = job_status(i as u64 + 1, Some(label), result.stats.rounds, Some(result));
            println!(
                "{}",
                serde_json::to_string(&doc.to_json()).expect("serialize job document")
            );
        }
    }

    // A failed job (oracle panic) carries its *input* circuit, not an
    // optimized one — writing that under --out or exiting 0 would pass
    // the input off as a result.
    for (label, result) in labels.iter().zip(&batch.results) {
        if let Some(err) = &result.error {
            fail(format!("{label}: {err}"));
        }
    }

    // Write optimized QASM under --out, preserving file names.
    if let Some(out_dir) = &opts.out_dir {
        std::fs::create_dir_all(out_dir)
            .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", out_dir.display())));
        for (path, result) in files.iter().zip(&batch.results) {
            let name = path.file_name().expect("qasm file name");
            let out_path = out_dir.join(name);
            std::fs::write(&out_path, popqc::ir::qasm::to_qasm(&result.circuit))
                .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", out_path.display())));
        }
        if !opts.quiet {
            eprintln!(
                "wrote {} optimized circuits to {}",
                batch.results.len(),
                out_dir.display()
            );
        }
    }

    // Optional semantic verification on simulator-sized circuits.
    if opts.verify {
        let mut verified = 0;
        let mut skipped = 0;
        for ((label, input), result) in labels.iter().zip(circuits).zip(&batch.results) {
            if input.num_qubits <= 12 && input.len() <= 60_000 {
                if !popqc::sim::circuits_equivalent(input, &result.circuit, 2, 0xC1C1) {
                    fail(format!("{label}: optimized circuit is NOT equivalent"));
                }
                verified += 1;
            } else {
                skipped += 1;
            }
        }
        if !opts.quiet {
            eprintln!("verify: {verified} equivalence-checked, {skipped} too large (skipped)");
        }
    }

    let stats = svc.stats();
    service_report(passes, &stats, svc.workers(), svc.threads_per_job())
}
