//! A realistic toolchain pipeline around Shor's algorithm:
//!
//! 1. generate the modular-exponentiation circuit,
//! 2. export it as OPENQASM 2.0 (what a frontend would hand us),
//! 3. parse it back, optimize with the whole-circuit baseline and with
//!    POPQC, and compare quality and speed,
//! 4. verify POPQC's output semantically against the input (simulator).
//!
//! ```sh
//! cargo run --release --example shor_pipeline
//! ```

use popqc::prelude::*;
use std::time::Instant;

fn main() {
    let circuit = Family::Shor.generate(10, 7);
    println!("Shor(10 qubits): {} gates", circuit.len());

    // Round-trip through QASM, as a real pipeline would.
    let qasm = popqc::ir::qasm::to_qasm(&circuit);
    println!("QASM export: {} bytes", qasm.len());
    let circuit = popqc::ir::qasm::parse(&qasm).expect("round-trip parse");

    // Whole-circuit baseline: one VOQC-style pass sequence.
    let baseline = RuleBasedOptimizer::voqc_baseline();
    let t0 = Instant::now();
    let base_out = baseline.optimize_circuit(&circuit);
    let base_time = t0.elapsed();

    // POPQC with the fixpoint oracle.
    let oracle = RuleBasedOptimizer::oracle();
    let t0 = Instant::now();
    let (popqc_out, stats) = optimize_circuit(&circuit, &oracle, &PopqcConfig::with_omega(200));
    let popqc_time = t0.elapsed();

    println!(
        "baseline: {} gates in {:?}   POPQC: {} gates in {:?} ({} rounds)",
        base_out.len(),
        base_time,
        popqc_out.len(),
        popqc_time,
        stats.rounds
    );

    // Semantic check (10 qubits fits the simulator comfortably).
    let ok = popqc::sim::circuits_equivalent(&circuit, &popqc_out, 3, 2025);
    println!("semantics preserved: {ok}");
    assert!(ok);

    // Export the optimized circuit for the next pipeline stage.
    let out_qasm = popqc::ir::qasm::to_qasm(&popqc_out);
    println!("optimized QASM: {} bytes", out_qasm.len());
}
