//! Batch optimization through the registry-based service: outer
//! parallelism over circuits, memoized results with cache-hit accounting,
//! and a mixed-oracle batch where each job selects its oracle per request
//! while sharing one cache.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```

use popqc::prelude::*;

fn main() {
    // One job per benchmark family at its smallest laptop-scale width.
    let circuits: Vec<Circuit> = Family::PAPER
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 42))
        .collect();
    let total_gates: usize = circuits.iter().map(Circuit::len).sum();
    println!(
        "batch: {} circuits, {} gates total",
        circuits.len(),
        total_gates
    );

    // The built-in registry: rule_based (default), rule_single_pass,
    // search — all live behind one service, selected per request.
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 4,
            threads_per_job: 1,
            ..ServiceConfig::default()
        },
    );
    let cfg = PopqcConfig::with_omega(100);

    // Cold pass: every job misses the cache and runs the engine.
    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    let (gates_in, gates_out) = cold.gate_totals();
    println!(
        "cold: {:.3}s ({:.1} jobs/s), {} oracle calls, {gates_in} -> {gates_out} gates",
        cold.wall_nanos as f64 / 1e9,
        cold.jobs_per_sec(),
        cold.oracle_calls_issued(),
    );

    // Warm pass: identical circuits, so every job is a cache hit and no
    // oracle call is issued.
    let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    println!(
        "warm: {:.6}s ({:.0} jobs/s), {} cache hits, {} oracle calls",
        warm.wall_nanos as f64 / 1e9,
        warm.jobs_per_sec(),
        warm.cache_hits(),
        warm.oracle_calls_issued(),
    );
    assert_eq!(warm.cache_hits(), circuits.len());
    assert_eq!(warm.oracle_calls_issued(), 0);

    // Mixed-oracle batch: each request names its own oracle, all jobs
    // share the service queue AND the result cache. The rule_based jobs
    // are cache hits from the passes above (same circuit, same oracle id,
    // same config); the rule_single_pass jobs are fresh cache entries.
    let mixed: Vec<JobRequest> = circuits
        .iter()
        .flat_map(|c| {
            [
                JobRequest::with_oracle(c.clone(), "rule_based", cfg.clone()),
                JobRequest::with_oracle(c.clone(), "rule_single_pass", cfg.clone()),
            ]
        })
        .collect();
    let mixed = svc
        .submit_batch_requests(mixed)
        .expect("both oracles are registered")
        .wait();
    let hits = mixed.cache_hits();
    println!(
        "mixed: {} jobs across 2 oracles, {} cache hits (the rule_based half), \
         {} oracle calls",
        mixed.results.len(),
        hits,
        mixed.oracle_calls_issued(),
    );
    assert_eq!(hits, circuits.len(), "rule_based half must hit the cache");

    // Per-job detail for the mixed pass: same fingerprint, two oracle ids,
    // two distinct cache entries.
    for result in mixed.results.iter().take(4) {
        println!(
            "  {:<16} {:>6} -> {:>6} gates  (cache_hit: {:<5} key {}/{})",
            result.key.oracle_id,
            result.stats.initial_units,
            result.stats.final_units,
            result.cache_hit,
            &result.key.fingerprint.to_hex()[..12],
            result.key.oracle_id,
        );
    }

    let stats = svc.stats();
    println!(
        "service: {} submitted, {} cache hits, {} oracle calls issued, {} cached entries",
        stats.submitted, stats.cache_hits, stats.oracle_calls_issued, stats.cache.entries
    );
}
