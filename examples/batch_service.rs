//! Batch optimization through the service: outer parallelism over circuits,
//! memoized results, and cache-hit accounting.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```

use popqc::prelude::*;

fn main() {
    // One job per benchmark family at its smallest laptop-scale width.
    let circuits: Vec<Circuit> = Family::ALL
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 42))
        .collect();
    let total_gates: usize = circuits.iter().map(Circuit::len).sum();
    println!(
        "batch: {} circuits, {} gates total",
        circuits.len(),
        total_gates
    );

    let svc = OptimizationService::new(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers: 4,
            threads_per_job: 1,
            ..ServiceConfig::default()
        },
    );
    let cfg = PopqcConfig::with_omega(100);

    // Cold pass: every job misses the cache and runs the engine.
    let cold = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    let (gates_in, gates_out) = cold.gate_totals();
    println!(
        "cold: {:.3}s ({:.1} jobs/s), {} oracle calls, {gates_in} -> {gates_out} gates",
        cold.wall_nanos as f64 / 1e9,
        cold.jobs_per_sec(),
        cold.oracle_calls_issued(),
    );

    // Warm pass: identical circuits, so every job is a cache hit and no
    // oracle call is issued.
    let warm = svc.submit_batch(circuits.iter().cloned(), &cfg).wait();
    println!(
        "warm: {:.6}s ({:.0} jobs/s), {} cache hits, {} oracle calls",
        warm.wall_nanos as f64 / 1e9,
        warm.jobs_per_sec(),
        warm.cache_hits(),
        warm.oracle_calls_issued(),
    );
    assert_eq!(warm.cache_hits(), circuits.len());
    assert_eq!(warm.oracle_calls_issued(), 0);

    // Per-job detail for the cold pass.
    for (family, result) in Family::ALL.iter().zip(&cold.results) {
        println!(
            "  {:<8} {:>6} -> {:>6} gates  ({} rounds, {} oracle calls, key {})",
            family.name(),
            result.stats.initial_units,
            result.stats.final_units,
            result.stats.rounds,
            result.stats.oracle_calls,
            &result.key.fingerprint.to_hex()[..12],
        );
    }

    let stats = svc.stats();
    println!(
        "service: {} submitted, {} cache hits, {} oracle calls issued, {} cached entries",
        stats.submitted, stats.cache_hits, stats.oracle_calls_issued, stats.cache.entries
    );
}
