//! The tiered result store across a service "restart": process one
//! computes and persists, a second service over the same cache directory
//! answers the identical jobs from the disk tier with zero oracle calls.
//! This is the `popqc serve --cache-tier tiered --cache-dir …` behaviour,
//! driven through the library seam.
//!
//! ```sh
//! cargo run --release --example persistent_cache
//! ```

use popqc::prelude::*;

fn main() {
    let cache_dir = std::env::temp_dir().join("popqc-persistent-cache-example");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let circuits: Vec<Circuit> = Family::PAPER
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 7))
        .collect();
    let cfg = PopqcConfig::with_omega(100);

    // The one seam: every tier below is the same call with a different
    // `StoreTier`, and nothing else in the program changes.
    let tiered = |dir: &std::path::Path| -> std::sync::Arc<dyn ResultStore> {
        build_store(StoreTier::Tiered, Some(dir), None, 1024, 16).expect("build store")
    };

    // "Process" one: cold batch, write-through to disk.
    {
        let svc = OptimizationService::with_store(
            OracleRegistry::builtin(),
            ServiceConfig::default(),
            tiered(&cache_dir),
        );
        let batch = svc.submit_batch(circuits.clone(), &cfg).wait();
        println!(
            "first service:  {} jobs, {} cache hits, {} oracle calls",
            batch.results.len(),
            batch.cache_hits(),
            batch.oracle_calls_issued()
        );
        // The service (and its memory tier) dies here; the directory stays.
    }

    // "Process" two: a fresh service, a fresh (empty) memory tier — and a
    // warm disk tier that answers everything.
    let svc = OptimizationService::with_store(
        OracleRegistry::builtin(),
        ServiceConfig::default(),
        tiered(&cache_dir),
    );
    let batch = svc.submit_batch(circuits, &cfg).wait();
    println!(
        "second service: {} jobs, {} cache hits, {} oracle calls",
        batch.results.len(),
        batch.cache_hits(),
        batch.oracle_calls_issued()
    );
    assert_eq!(batch.cache_hits(), batch.results.len());
    assert_eq!(batch.oracle_calls_issued(), 0);

    // The per-tier breakdown: the disk tier took the hits, and each one
    // was promoted into the new memory front.
    for tier in &svc.stats().store.tiers {
        println!(
            "tier {:>6}: {} entries, {} hits, {} misses, {} bytes",
            tier.tier, tier.entries, tier.hits, tier.misses, tier.bytes
        );
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
}
