//! Depth-aware optimization (the paper's Section 7.8): run POPQC at *layer*
//! granularity with a Quartz-style search oracle minimizing
//! `cost = 10·depth + gates`, and compare against plain gate-count
//! optimization.
//!
//! ```sh
//! cargo run --release --example depth_aware
//! ```

use popqc::prelude::*;

fn main() {
    let circuit = Family::Vqe.generate(10, 11);
    let layered = circuit.layered();
    println!(
        "input: {} gates, depth {} (mixed cost {})",
        circuit.len(),
        layered.depth(),
        layered.mixed_cost()
    );

    // Both arms run the *layer-granularity* engine with the same search
    // oracle and budget; only the cost function differs — exactly the
    // comparison of the paper's Figure 6.
    let cfg = PopqcConfig::with_omega(20);

    let gate_oracle = LayerSearchOracle::new(GateCount, 400, circuit.num_qubits);
    let (by_gates, _) = optimize_layered(&layered, &gate_oracle, &cfg);
    println!(
        "gate-count objective:  {} gates, depth {} (mixed cost {})",
        by_gates.gate_count(),
        by_gates.depth(),
        by_gates.mixed_cost()
    );

    let mixed_oracle = LayerSearchOracle::new(MixedDepthGates::default(), 400, circuit.num_qubits);
    let (by_depth, stats) = optimize_layered(&layered, &mixed_oracle, &cfg);
    println!(
        "mixed objective:       {} gates, depth {} (mixed cost {}) in {} rounds",
        by_depth.gate_count(),
        by_depth.depth(),
        by_depth.mixed_cost(),
        stats.rounds
    );

    // The depth-aware run should never lose on the mixed objective, and
    // should not lose on depth to the gate-count arm.
    assert!(by_depth.mixed_cost() <= layered.mixed_cost());
    assert!(by_depth.depth() <= by_gates.depth());

    // Both outputs must be semantically equivalent to the input.
    assert!(popqc::sim::circuits_equivalent(
        &circuit,
        &by_gates.to_circuit(),
        2,
        5
    ));
    assert!(popqc::sim::circuits_equivalent(
        &circuit,
        &by_depth.to_circuit(),
        2,
        6
    ));
    println!("semantics preserved for both objectives");
}
