//! Quickstart: generate a benchmark circuit, optimize it with POPQC, and
//! inspect the run statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use popqc::prelude::*;

fn main() {
    // A VQE ansatz on 12 qubits — a few thousand gates.
    let circuit = Family::Vqe.generate(12, 42);
    println!(
        "input:  {} gates, depth {}, {} qubits",
        circuit.len(),
        circuit.depth(),
        circuit.num_qubits
    );

    // The oracle is a VOQC-style rule-based optimizer run to fixpoint on
    // each 2Ω-segment. Ω=100 is plenty for a circuit this size.
    let oracle = RuleBasedOptimizer::oracle();
    let config = PopqcConfig::with_omega(100);
    let (optimized, stats) = optimize_circuit(&circuit, &oracle, &config);

    println!(
        "output: {} gates, depth {}  ({:.1}% reduction)",
        optimized.len(),
        optimized.depth(),
        100.0 * stats.reduction()
    );
    println!(
        "rounds: {}   oracle calls: {} ({} accepted)   time: {:.1} ms ({:.0}% in oracle)",
        stats.rounds,
        stats.oracle_calls,
        stats.accepted,
        stats.total_nanos as f64 / 1e6,
        100.0 * stats.oracle_nanos as f64 / stats.total_nanos.max(1) as f64
    );

    // The paper's guarantee (Theorem 7): no Ω-window of the output can be
    // improved by the oracle. Check it directly on this small instance.
    match verify_local_optimality(
        &optimized.gates,
        optimized.num_qubits,
        &oracle,
        config.omega,
    ) {
        Ok(()) => println!("local optimality verified for Ω = {}", config.omega),
        Err(at) => println!("window at {at} still improvable (oracle not well-behaved here)"),
    }
}
