//! The HTTP frontend end to end in one process: start a registry-based
//! server on an ephemeral port, then act as its own remote client over a
//! plain `TcpStream` — discover the API (`/v1/version`, `/v1/oracles`),
//! optimize a circuit (cold), resubmit it (cache hit), re-run it under a
//! *different* oracle selected per request (`?oracle=`, a distinct cache
//! entry), race duplicate submissions (in-flight coalescing), and read
//! `/v1/stats`.
//!
//! ```sh
//! cargo run --release --example serve_http
//! ```

use popqc::http::{AppState, HttpServer, ServerConfig};
use popqc::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("receive");
    reply.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    // The full built-in registry: every oracle stays selectable per
    // request; `rule_based` answers requests that name none.
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 4,
            threads_per_job: 1,
            ..ServiceConfig::default()
        },
    );
    let server = HttpServer::serve(
        "127.0.0.1:0",
        Arc::new(AppState::new(svc, 100)),
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    println!("serving on http://{addr}");

    // API discovery: version + the oracle registry.
    println!(
        "\nGET /v1/version -> {}",
        request(addr, "GET", "/v1/version", "")
    );
    println!(
        "\nGET /v1/oracles -> {}",
        request(addr, "GET", "/v1/oracles", "")
    );

    let qasm = popqc::ir::qasm::to_qasm(&Family::Vqe.generate(12, 42));

    // Cold: the engine runs under the default oracle.
    let cold = request(addr, "POST", "/v1/optimize?label=vqe-12", &qasm);
    println!("\ncold POST /v1/optimize -> {cold}");

    // Warm: identical circuit, answered from the result cache.
    let warm = request(addr, "POST", "/v1/optimize", &qasm);
    println!("\nwarm POST /v1/optimize -> {warm}");

    // Same circuit through a different oracle, selected per request: a
    // distinct cache entry in the same shared cache (cache_hit:false).
    let other = request(addr, "POST", "/v1/optimize?oracle=rule_single_pass", &qasm);
    println!("\nPOST /v1/optimize?oracle=rule_single_pass -> {other}");

    // Concurrent duplicates: one computation, the rest coalesce (visible
    // in /v1/stats below as `coalesced`); a distinct circuit so it is not
    // already cached.
    let fresh = popqc::ir::qasm::to_qasm(&Family::Grover.generate(8, 7));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let fresh = &fresh;
            s.spawn(move || request(addr, "POST", "/v1/optimize", fresh));
        }
    });

    let stats = request(addr, "GET", "/v1/stats", "");
    println!("\nGET /v1/stats -> {stats}");
}
