//! Bring your own oracle: POPQC treats the oracle as a black box, so any
//! `SegmentOracle<Gate>` implementation plugs in. This example writes a
//! deliberately tiny oracle — adjacent-inverse-pair cancellation only — and
//! shows that POPQC still terminates with a circuit that is locally optimal
//! *with respect to that oracle* (the guarantee is always relative to the
//! oracle you supply).
//!
//! ```sh
//! cargo run --release --example custom_oracle
//! ```

use popqc::prelude::*;

/// Cancels adjacent inverse pairs (`H·H`, `X·X`, `CNOT·CNOT`, `RZ(a)·RZ(-a)`)
/// with a single stack pass. Much weaker than the rule-based oracle — and
/// that's the point.
struct AdjacentCanceller;

impl SegmentOracle<Gate> for AdjacentCanceller {
    fn optimize(&self, units: &[Gate], _num_qubits: u32) -> Vec<Gate> {
        let mut out: Vec<Gate> = Vec::with_capacity(units.len());
        for &g in units {
            if out.last().is_some_and(|p| p.is_inverse_of(&g)) {
                out.pop();
            } else {
                out.push(g);
            }
        }
        out
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        "adjacent-canceller"
    }
}

fn main() {
    let circuit = Family::Grover.generate(11, 3);
    println!("input: {} gates", circuit.len());

    let oracle = AdjacentCanceller;
    let cfg = PopqcConfig::with_omega(64);
    let (optimized, stats) = optimize_circuit(&circuit, &oracle, &cfg);
    println!(
        "custom oracle: {} gates ({:.1}% reduction), {} rounds, {} oracle calls",
        optimized.len(),
        100.0 * stats.reduction(),
        stats.rounds,
        stats.oracle_calls
    );

    // Theorem 7, relative to *this* oracle.
    assert_eq!(
        verify_local_optimality(&optimized.gates, optimized.num_qubits, &oracle, cfg.omega),
        Ok(())
    );
    println!(
        "locally optimal w.r.t. the custom oracle (Ω = {})",
        cfg.omega
    );

    // The stronger built-in oracle can of course still find more.
    let strong = RuleBasedOptimizer::oracle();
    let (stronger, _) = optimize_circuit(&circuit, &strong, &cfg);
    println!("rule-based oracle for comparison: {} gates", stronger.len());
}
