//! The segment cache's end-to-end acceptance test (ISSUE 8): resubmitting
//! a structurally identical `Parameterized` ansatz with fresh angles must
//! be served almost entirely from the angle-abstract segment cache —
//! near-zero marginal oracle calls, ≥90% segment hit rate — while
//! producing byte-identical output to a cache-disabled service and
//! remaining semantically equivalent to the input.

use popqc::prelude::*;

const QUBITS: u32 = 12;
const SWEEP_SEEDS: std::ops::Range<u64> = 1..6;

fn service(seg_cache_capacity: usize) -> OptimizationService {
    OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            seg_cache_capacity,
            ..ServiceConfig::default()
        },
    )
}

fn optimize(
    svc: &OptimizationService,
    seed: u64,
    cfg: &PopqcConfig,
) -> std::sync::Arc<popqc::service::JobResult> {
    let circuit = Family::Parameterized.generate(QUBITS, seed);
    let result = svc
        .submit_as("structural", circuit, cfg)
        .expect("structural oracle is registered")
        .wait();
    assert!(result.error.is_none(), "job failed: {:?}", result.error);
    result
}

#[test]
fn parameter_sweep_is_served_from_the_segment_cache() {
    let cfg = PopqcConfig::with_omega(40);
    let cached = service(4096);
    let cold = service(0);

    // Warm pass (seed 0) populates the segment cache; its own oracle
    // calls are the cold-path cost every later sweep iteration avoids.
    let warm = optimize(&cached, 0, &cfg);
    let cold_calls = warm.stats.oracle_calls;
    assert!(cold_calls > 0, "warm pass must have exercised the oracle");
    let after_warm = cached.stats();

    for seed in SWEEP_SEEDS {
        let input = Family::Parameterized.generate(QUBITS, seed);
        let swept = optimize(&cached, seed, &cfg);

        // Fresh angles → a distinct result-store key: the engine really
        // ran, it just answered segment lookups from the cache.
        assert!(!swept.cache_hit, "seed {seed} must miss the result store");

        // Byte-level equality against the cold path: a seg-cache-disabled
        // service over the same oracle must produce the identical circuit.
        let baseline = optimize(&cold, seed, &cfg);
        assert_eq!(
            swept.circuit, baseline.circuit,
            "seed {seed}: cached path diverged from the cold path"
        );

        // And the output still computes the same unitary as the input.
        assert!(
            popqc::sim::circuits_equivalent(&input, &swept.circuit, 2, 0xC1C1 + seed),
            "seed {seed}: output not equivalent to input"
        );
    }

    // The sweep's marginal oracle work must be near zero: each swept
    // instance alone would have cost `cold_calls` oracle calls.
    let after_sweep = cached.stats();
    let sweep_len = SWEEP_SEEDS.end - SWEEP_SEEDS.start;
    let marginal = after_sweep.oracle_calls_issued - after_warm.oracle_calls_issued;
    let avoided = cold_calls * sweep_len;
    assert!(
        marginal * 20 <= avoided,
        "sweep issued {marginal} oracle calls; the cold path would have \
         issued {avoided} — the segment cache absorbed too little"
    );

    // ≥90% segment-cache hit rate across the sweep's lookups.
    let hits = after_sweep.seg_cache.hits - after_warm.seg_cache.hits;
    let misses = after_sweep.seg_cache.misses - after_warm.seg_cache.misses;
    assert!(
        hits * 10 >= (hits + misses) * 9,
        "sweep hit rate below 90%: {hits} hits / {misses} misses"
    );

    // The disabled service never touched a segment cache.
    let cold_stats = cold.stats();
    assert!(!cold_stats.seg_cache.enabled);
    assert_eq!(cold_stats.seg_cache.hits + cold_stats.seg_cache.misses, 0);
}
