//! End-to-end pipeline tests: benchmark generation → POPQC → semantic
//! verification, across every family, plus baseline-quality comparisons.

use popqc::prelude::*;

#[test]
fn every_family_optimizes_and_verifies() {
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(100);
    for family in Family::ALL {
        let q = family.ladder(0)[0];
        let circuit = family.generate(q, 7);
        let (opt, stats) = optimize_circuit(&circuit, &oracle, &cfg);
        assert!(
            opt.len() < circuit.len(),
            "{}: expected some reduction on {} gates",
            family.name(),
            circuit.len()
        );
        assert_eq!(stats.final_units, opt.len());
        assert_eq!(opt.validate(), Ok(()), "{}: invalid output", family.name());
        // Simulator check where feasible.
        if q <= 14 && circuit.len() <= 40_000 {
            assert!(
                popqc::sim::circuits_equivalent(&circuit, &opt, 2, 1234),
                "{}: semantics changed",
                family.name()
            );
        }
    }
}

#[test]
fn popqc_quality_matches_or_beats_single_pass_baseline() {
    // Section 7.4's quality story: POPQC with the fixpoint oracle never
    // loses materially to the whole-circuit single-sequence baseline, and
    // usually wins (convergence effect).
    let oracle = RuleBasedOptimizer::oracle();
    let baseline = RuleBasedOptimizer::voqc_baseline();
    let cfg = PopqcConfig::with_omega(100);
    let mut wins = 0;
    let mut total = 0;
    for family in Family::ALL {
        let q = family.ladder(0)[0];
        let circuit = family.generate(q, 13);
        let base = baseline.optimize_circuit(&circuit);
        let (pq, _) = optimize_circuit(&circuit, &oracle, &cfg);
        total += 1;
        // Allow a small deficit (local optimality is weaker than global
        // passes in odd corners) but track wins.
        assert!(
            (pq.len() as f64) <= base.len() as f64 * 1.05 + 8.0,
            "{}: POPQC {} much worse than baseline {}",
            family.name(),
            pq.len(),
            base.len()
        );
        if pq.len() <= base.len() {
            wins += 1;
        }
    }
    assert!(
        wins * 2 >= total,
        "POPQC should at least tie the baseline on most families ({wins}/{total})"
    );
}

#[test]
fn optimized_circuits_round_trip_through_qasm() {
    let oracle = RuleBasedOptimizer::oracle();
    let circuit = Family::Hhl.generate(8, 5);
    let (opt, _) = optimize_circuit(&circuit, &oracle, &PopqcConfig::with_omega(64));
    let qasm = popqc::ir::qasm::to_qasm(&opt);
    let back = popqc::ir::qasm::parse(&qasm).expect("parse optimized output");
    assert_eq!(back, opt);
}

#[test]
fn oac_and_popqc_agree_on_quality_with_same_oracle() {
    // Table 3 setting: same oracle, same Ω; quality within 0.1%-ish in the
    // paper, we allow a few percent on these small instances.
    let oracle = RuleBasedOptimizer::oracle();
    for family in [Family::Vqe, Family::Grover, Family::Shor] {
        let q = family.ladder(0)[0];
        let circuit = family.generate(q, 3);
        let (oac_out, oac_stats) = oac_optimize(&circuit, &oracle, &OacConfig::with_omega(100));
        let (pq_out, pq_stats) = optimize_circuit(&circuit, &oracle, &PopqcConfig::with_omega(100));
        let a = oac_out.len() as f64;
        let b = pq_out.len() as f64;
        assert!(
            (a - b).abs() / a.max(b) < 0.05,
            "{}: OAC {} vs POPQC {} diverge",
            family.name(),
            a,
            b
        );
        assert!(oac_stats.oracle_calls > 0 && pq_stats.oracle_calls > 0);
    }
}

#[test]
fn layer_mode_on_benchmarks() {
    // Section 7.8 on a real benchmark family: the mixed objective must not
    // regress, and depth should drop on VQE-style circuits.
    let circuit = Family::Vqe.generate(8, 21);
    let layered = circuit.layered();
    let oracle = LayerSearchOracle::new(MixedDepthGates::default(), 200, circuit.num_qubits);
    let (opt, _) = optimize_layered(&layered, &oracle, &PopqcConfig::with_omega(12));
    assert!(opt.mixed_cost() <= layered.mixed_cost());
    assert!(popqc::sim::circuits_equivalent(
        &circuit,
        &opt.to_circuit(),
        2,
        77
    ));
}

#[test]
fn initial_ordering_variants_all_verify() {
    // Table 4 setting: default vs left-justified vs right-justified inputs.
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(100);
    let circuit = Family::Sqrt.generate(14, 9);
    for (name, variant) in [
        ("default", circuit.clone()),
        ("left", circuit.left_justified()),
        ("right", circuit.right_justified()),
    ] {
        let (opt, _) = optimize_circuit(&variant, &oracle, &cfg);
        assert!(opt.len() < variant.len(), "{name}: no reduction");
        assert!(
            popqc::sim::circuits_equivalent(&circuit, &opt, 2, 31),
            "{name}: semantics changed"
        );
    }
}
