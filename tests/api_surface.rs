//! Cross-surface contract tests: the HTTP frontend and the CLI emit the
//! SAME versioned `popqc-api` documents, built by the same adapter — for
//! one job, the two bodies are byte-identical up to the per-run timing
//! fields.

use popqc::http::{AppState, HttpServer, ServerConfig};
use popqc::prelude::*;
use popqc::service::report::job_status;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn http_body(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    reply.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

/// Zeroes the fields that legitimately differ between two runs of the
/// same job (queue/run wall time); everything else must match exactly.
fn normalize(doc: &serde_json::Value) -> qapi::JobStatus {
    let mut status = qapi::JobStatus::from_json(doc).expect("v1 job document");
    if let Some(r) = &mut status.result {
        r.queue_seconds = 0.0;
        r.run_seconds = 0.0;
    }
    status
}

#[test]
fn http_and_cli_job_documents_are_byte_identical() {
    let service_config = ServiceConfig {
        workers: 2,
        threads_per_job: 1,
        cache_capacity: 64,
        cache_shards: 4,
        seg_cache_capacity: 0,
    };
    let circuit = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 33);
    let qasm = popqc::ir::qasm::to_qasm(&circuit);

    // Surface 1: the HTTP frontend over a registry-based service.
    let server = HttpServer::serve(
        "127.0.0.1:0",
        Arc::new(AppState::new(
            OptimizationService::new(OracleRegistry::builtin(), service_config.clone()),
            80,
        )),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let body = http_body(
        server.local_addr(),
        "POST",
        "/v1/optimize?label=contract",
        &qasm,
    );
    let http_doc = serde_json::from_str(&body).expect("HTTP body is JSON");

    // Surface 2: what `popqc optimize --json` prints for the same job —
    // the same shared adapter over a fresh identical service, with the
    // same id assignment (first job = 1) and label.
    let svc = OptimizationService::new(OracleRegistry::builtin(), service_config);
    let result = svc.submit(circuit, &PopqcConfig::with_omega(80)).wait();
    let cli_doc = job_status(1, Some("contract"), result.stats.rounds, Some(&result)).to_json();

    // Byte-identical after zeroing the per-run timings: the engine is
    // deterministic, so every other field (fingerprint, oracle id, gate
    // counts, rounds, oracle calls, optimized QASM) matches exactly, and
    // one serializer renders both.
    let http_text = serde_json::to_string(&normalize(&http_doc).to_json()).unwrap();
    let cli_text = serde_json::to_string(&normalize(&cli_doc).to_json()).unwrap();
    assert_eq!(http_text, cli_text);

    // Sanity: the normalized documents really carry the payload.
    let status = normalize(&http_doc);
    let report = status.result.expect("completed job");
    assert_eq!(report.oracle, "rule_based");
    assert!(report.qasm.is_some());
    assert!(report.output_gates > 0);
}

#[test]
fn facade_exposes_the_api_crate() {
    // The versioned surface is reachable through the facade for clients
    // that link `popqc` directly.
    assert_eq!(popqc::api::API_VERSION, "v1");
    let err = popqc::api::ApiError::Overloaded("busy".into());
    assert_eq!(err.http_status(), 503);
    assert_eq!(
        popqc::api::ApiError::from_json(&err.to_json()).unwrap(),
        err
    );
}
