//! Property-based tests (proptest) over the core invariants:
//! oracle monotonicity and semantic preservation, POPQC local optimality,
//! engine determinism, and potential-function bounds on arbitrary circuits.

use popqc::prelude::*;
use proptest::prelude::*;

/// Strategy: arbitrary circuits over `n` qubits with π/8-grid angles.
fn arb_circuit(n: u32, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0u8..4, 0..n, 0..n.max(2), -8i64..8), 0..max_len).prop_map(
        move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, r, num) in specs {
                match kind {
                    0 => {
                        c.h(q);
                    }
                    1 => {
                        c.x(q);
                    }
                    2 => {
                        c.rz(q, Angle::pi_frac(num, 8));
                    }
                    _ => {
                        let t = if r == q { (r + 1) % n } else { r % n };
                        c.cnot(q, t);
                    }
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_never_increases_gate_count(c in arb_circuit(4, 120)) {
        let oracle = RuleBasedOptimizer::oracle();
        let out = oracle.optimize(&c.gates, c.num_qubits);
        prop_assert!(out.len() <= c.gates.len());
    }

    #[test]
    fn oracle_preserves_semantics(c in arb_circuit(4, 80)) {
        let oracle = RuleBasedOptimizer::oracle();
        let out = Circuit { num_qubits: c.num_qubits, gates: oracle.optimize(&c.gates, c.num_qubits) };
        prop_assert!(popqc::sim::circuits_equivalent(&c, &out, 2, 0xfeed));
    }

    #[test]
    fn popqc_output_is_locally_optimal_with_well_behaved_oracle(
        c in arb_circuit(4, 150), omega in 4usize..16
    ) {
        // Theorem 7 exactly: with a *well-behaved* oracle (the paper's
        // hypothesis, here enforced constructively), no Ω-window of the
        // output is improvable.
        let oracle = popqc::oracles::WellBehavedOracle::new(
            RuleBasedOptimizer::oracle(), omega);
        let (opt, _) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        prop_assert_eq!(
            verify_local_optimality(&opt.gates, c.num_qubits, &oracle, omega),
            Ok(())
        );
        prop_assert!(popqc::sim::circuits_equivalent(&c, &opt, 2, 0x9e9e));
    }

    #[test]
    fn popqc_output_is_approximately_locally_optimal_with_fast_oracle(
        c in arb_circuit(4, 400), omega in 8usize..16
    ) {
        // The fast pipeline oracle is only approximately well-behaved (NOT
        // propagation is window-extent-sensitive — see qoracle::well_behaved
        // docs), so Theorem 7 holds approximately. One residual defect (an
        // unluckily parked gate at a segment seam) is visible to up to Ω−1
        // overlapping windows, so the bound is phrased in defects: allow a
        // couple of defects plus a 5% window tail.
        let oracle = RuleBasedOptimizer::oracle();
        let (opt, _) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        let units = &opt.gates;
        let mut improvable = 0usize;
        let mut windows = 0usize;
        let n_win = units.len().saturating_sub(omega - 1).max(1).min(units.len().max(1));
        for start in 0..n_win {
            let end = (start + omega).min(units.len());
            let w = &units[start..end];
            windows += 1;
            let o = oracle.optimize(w, c.num_qubits);
            if o.len() < w.len() {
                improvable += 1;
            }
        }
        prop_assert!(
            improvable <= 3 * omega + windows / 20,
            "{improvable}/{windows} windows improvable (omega {omega})"
        );
    }

    #[test]
    fn popqc_preserves_semantics_any_omega(c in arb_circuit(5, 120), omega in 1usize..32) {
        let oracle = RuleBasedOptimizer::oracle();
        let (opt, _) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        prop_assert!(popqc::sim::circuits_equivalent(&c, &opt, 2, 0xabcd));
    }

    #[test]
    fn popqc_call_count_respects_potential_bound(c in arb_circuit(4, 150), omega in 2usize..16) {
        let oracle = RuleBasedOptimizer::oracle();
        let (_, stats) = optimize_circuit(&c, &oracle, &PopqcConfig::with_omega(omega));
        // Lemma 2: L = |F| + 2|C| decreases by >= 1 per oracle call.
        let bound = c.len().div_ceil(omega) + 2 * c.len();
        prop_assert!((stats.oracle_calls as usize) <= bound.max(1));
    }

    #[test]
    fn popqc_deterministic_across_pools(c in arb_circuit(4, 100)) {
        let oracle = RuleBasedOptimizer::oracle();
        let cfg = PopqcConfig::with_omega(12);
        let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap()
            .install(|| optimize_circuit(&c, &oracle, &cfg).0);
        let two = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap()
            .install(|| optimize_circuit(&c, &oracle, &cfg).0);
        prop_assert_eq!(one, two);
    }

    #[test]
    fn oac_matches_popqc_semantics(c in arb_circuit(4, 100)) {
        let oracle = RuleBasedOptimizer::oracle();
        let (oac_out, _) = oac_optimize(&c, &oracle, &OacConfig::with_omega(16));
        prop_assert!(popqc::sim::circuits_equivalent(&c, &oac_out, 2, 0x5151));
    }

    #[test]
    fn justified_orderings_are_equivalent(c in arb_circuit(5, 100)) {
        let left = c.left_justified();
        let right = c.right_justified();
        prop_assert_eq!(left.len(), c.len());
        prop_assert_eq!(right.len(), c.len());
        prop_assert!(popqc::sim::circuits_equivalent(&c, &left, 2, 1));
        prop_assert!(popqc::sim::circuits_equivalent(&c, &right, 2, 2));
    }

    #[test]
    fn layered_round_trip_preserves_depth(c in arb_circuit(5, 120)) {
        let lc = c.layered();
        prop_assert_eq!(lc.depth(), c.depth());
        prop_assert_eq!(lc.gate_count(), c.len());
        prop_assert!(lc.is_well_formed());
        let flat = lc.to_circuit();
        prop_assert_eq!(flat.depth(), c.depth());
    }

    #[test]
    fn qasm_round_trip(c in arb_circuit(5, 80)) {
        let text = popqc::ir::qasm::to_qasm(&c);
        let back = popqc::ir::qasm::parse(&text).unwrap();
        prop_assert_eq!(back, c);
    }
}
