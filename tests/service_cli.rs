//! End-to-end test of the `popqc` CLI: generate a directory of QASM
//! benchmarks, batch-optimize it twice in one process, and check the
//! acceptance properties — outputs re-parse and are semantically
//! equivalent, and the warm pass is pure cache hits with zero new oracle
//! calls (via the report's counters).

use popqc::prelude::Family;
use std::path::Path;
use std::process::Command;

fn popqc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_popqc")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(popqc_bin())
        .args(args)
        .output()
        .expect("spawn popqc CLI")
}

fn assert_success(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn cli_round_trips_a_directory_with_warm_cache_second_pass() {
    let tmp = std::env::temp_dir().join(format!("popqc-cli-test-{}", std::process::id()));
    let in_dir = tmp.join("in");
    let out_dir = tmp.join("out");
    std::fs::create_dir_all(&in_dir).unwrap();
    let _cleanup = Cleanup(&tmp);

    // A small multi-family batch via `popqc gen`.
    for (family, qubits) in [
        ("vqe", "8"),
        ("grover", "6"),
        ("statevec", "5"),
        ("hhl", "6"),
    ] {
        let out = run(&[
            "gen",
            "--family",
            family,
            "--qubits",
            qubits,
            "--seed",
            "9",
            "--out",
            in_dir.to_str().unwrap(),
        ]);
        assert_success(&out, &format!("gen {family}"));
    }
    let inputs: Vec<_> = std::fs::read_dir(&in_dir).unwrap().collect();
    assert_eq!(inputs.len(), 4);

    // Batch-optimize the directory twice in one process, with verification.
    let report_path = tmp.join("report.json");
    let out = run(&[
        "optimize",
        in_dir.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--omega",
        "80",
        "--workers",
        "2",
        "--threads-per-job",
        "1",
        "--grain",
        "4",
        "--repeat",
        "2",
        "--verify",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_success(&out, "optimize");

    // Every output re-parses, is smaller, and is equivalent to its input.
    let mut checked = 0;
    for entry in std::fs::read_dir(&in_dir).unwrap() {
        let in_path = entry.unwrap().path();
        let out_path = out_dir.join(in_path.file_name().unwrap());
        let original = popqc::ir::qasm::parse(&std::fs::read_to_string(&in_path).unwrap()).unwrap();
        let optimized = popqc::ir::qasm::parse(&std::fs::read_to_string(&out_path).unwrap())
            .unwrap_or_else(|e| panic!("optimized {} does not re-parse: {e}", out_path.display()));
        assert!(optimized.validate().is_ok());
        assert!(
            optimized.len() <= original.len(),
            "{}: output larger than input",
            out_path.display()
        );
        assert!(
            popqc::sim::circuits_equivalent(&original, &optimized, 2, 0xFACE),
            "{}: semantics changed",
            out_path.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 4);

    // The report's counters prove the warm-cache property.
    let report = serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap())
        .expect("report parses as JSON");
    let passes = report.get("passes").unwrap().as_array().unwrap();
    assert_eq!(passes.len(), 2);
    let cold = &passes[0];
    let warm = &passes[1];
    assert_eq!(cold.get("cache_hits").unwrap().as_u64(), Some(0));
    assert!(cold.get("oracle_calls_issued").unwrap().as_u64().unwrap() > 0);
    assert_eq!(warm.get("cache_hits").unwrap().as_u64(), Some(4));
    assert_eq!(
        warm.get("oracle_calls_issued").unwrap().as_u64(),
        Some(0),
        "warm pass must issue zero oracle calls"
    );
    // Warm jobs are flagged individually too.
    for job in warm.get("jobs").unwrap().as_array().unwrap() {
        assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(true));
    }
    let service = report.get("service").unwrap();
    assert_eq!(service.get("cache_hits").unwrap().as_u64(), Some(4));
    assert_eq!(service.get("submitted").unwrap().as_u64(), Some(8));
    // The executor block surfaces the work-stealing pool end to end,
    // with the CLI's --grain override visible in it.
    let executor = service.get("executor").expect("executor block in report");
    assert_eq!(executor.get("grain").unwrap().as_u64(), Some(4));
}

#[test]
fn cli_families_lists_every_family() {
    let out = run(&["families"]);
    assert_success(&out, "families");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = stdout.lines().collect();
    // The paper's eight plus the skewed executor workload.
    assert_eq!(listed.len(), Family::ALL.len());
    assert!(listed.contains(&"vqe") && listed.contains(&"shor") && listed.contains(&"skewed"));
}

#[test]
fn cli_rejects_bad_input_cleanly() {
    let out = run(&["gen", "--family", "sqrt", "--qubits", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("at least"), "got: {stderr}");

    let out = run(&["optimize", "/nonexistent-popqc-path"]);
    assert!(!out.status.success());
}

#[test]
fn cli_fails_cleanly_on_unparseable_qasm() {
    let tmp = std::env::temp_dir().join(format!("popqc-badqasm-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);

    // One good file and several malformed ones — including the inverted
    // qreg brackets that used to panic the parser with a slice error —
    // must each produce exit code 1 and a diagnostic naming the file,
    // never a panic mid-batch.
    let good = tmp.join("good.qasm");
    std::fs::write(&good, "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n").unwrap();
    for (name, contents) in [
        (
            "inverted-brackets.qasm",
            "OPENQASM 2.0;\nqreg q]0[;\nh q[0];\n",
        ),
        ("unknown-gate.qasm", "OPENQASM 2.0;\nqreg q[2];\nt q[0];\n"),
        ("not-qasm-at-all.qasm", "definitely not a circuit\n"),
    ] {
        let bad = tmp.join(name);
        std::fs::write(&bad, contents).unwrap();
        let out = run(&[
            "optimize",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--omega",
            "32",
        ]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name}: expected exit 1, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("popqc: error") && stderr.contains(name),
            "{name}: diagnostic must name the file, got: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{name}: CLI must not panic, got: {stderr}"
        );
        std::fs::remove_file(&bad).unwrap();
    }
}

#[test]
fn cli_serve_answers_health_and_optimize_over_loopback() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(popqc_bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--threads-per-job",
            "1",
            "--omega",
            "64",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn popqc serve");
    let _cleanup = KillOnDrop(&mut child);

    // The CLI announces the resolved ephemeral port on stderr.
    let stderr = _cleanup.0.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let send = |target: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect to serve");
        write!(
            s,
            "{} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            if body.is_empty() { "GET" } else { "POST" },
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        reply
    };

    let health = send("/healthz", "");
    assert!(health.starts_with("HTTP/1.1 200"), "got: {health}");

    let qasm = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[0];\ncx q[0],q[1];\n";
    let reply = send("/v1/optimize", qasm);
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
    assert!(reply.contains("\"cache_hit\":false"), "got: {reply}");
    let reply = send("/v1/optimize", qasm);
    assert!(reply.contains("\"cache_hit\":true"), "got: {reply}");
}

/// Kills the `popqc serve` child on drop, including on panic.
struct KillOnDrop<'a>(&'a mut std::process::Child);

impl Drop for KillOnDrop<'_> {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Removes the temp tree on drop, including on panic.
struct Cleanup<'a>(&'a Path);

impl Drop for Cleanup<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(self.0);
    }
}

#[test]
fn cli_oracles_lists_the_builtin_registry_with_default() {
    let out = run(&["oracles"]);
    assert_success(&out, "oracles");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["rule_based", "rule_single_pass", "search"] {
        assert!(stdout.contains(id), "missing {id}: {stdout}");
    }
    assert!(
        stdout.contains("rule_based (default)"),
        "default not marked: {stdout}"
    );
}

#[test]
fn cli_json_emits_v1_job_status_documents() {
    let tmp = std::env::temp_dir().join(format!("popqc-json-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);

    let a = tmp.join("a.qasm");
    let b = tmp.join("b.qasm");
    std::fs::write(
        &a,
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[0];\ncx q[0],q[1];\n",
    )
    .unwrap();
    std::fs::write(&b, "OPENQASM 2.0;\nqreg q[3];\nx q[2];\nx q[2];\nh q[1];\n").unwrap();

    let out = run(&[
        "optimize",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--omega",
        "32",
        "--oracle",
        "rule_based",
        "--json",
        "--quiet",
    ]);
    assert_success(&out, "optimize --json");

    // One JobStatus document per job, parseable by the shared DTO layer,
    // ids in submission order like the HTTP frontend assigns them.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let docs: Vec<qapi::JobStatus> = stdout
        .lines()
        .map(|line| {
            let v = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("line is not JSON: {e}\n{line}"));
            qapi::JobStatus::from_json(&v)
                .unwrap_or_else(|e| panic!("line is not a v1 JobStatus: {e}\n{line}"))
        })
        .collect();
    assert_eq!(docs.len(), 2);
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(doc.job_id, i as u64 + 1);
        assert!(doc.done);
        let report = doc.result.as_ref().expect("completed job");
        assert_eq!(report.oracle, "rule_based");
        assert_eq!(report.omega, 32);
        assert!(report.qasm.is_some(), "job document carries the circuit");
    }
    assert_eq!(docs[0].label.as_deref(), Some("a.qasm"));
    assert_eq!(docs[1].label.as_deref(), Some("b.qasm"));
}

#[test]
fn cli_rejects_unknown_oracle_with_available_list() {
    let tmp = std::env::temp_dir().join(format!("popqc-badoracle-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);
    let a = tmp.join("a.qasm");
    std::fs::write(&a, "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n").unwrap();

    let out = run(&["optimize", a.to_str().unwrap(), "--oracle", "nope"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown oracle") && stderr.contains("rule_based"),
        "diagnostic must list available oracles: {stderr}"
    );
}

// ---------------------------------------------------------------------------
// Result-store persistence (`--cache-tier` / `--cache-dir` / `popqc cache`)
// ---------------------------------------------------------------------------

#[test]
fn cli_unknown_cache_tier_exits_1_with_diagnostic() {
    let tmp = std::env::temp_dir().join(format!("popqc-badtier-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);
    let a = tmp.join("a.qasm");
    std::fs::write(&a, "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n").unwrap();

    for subcommand in [
        vec!["optimize", a.to_str().unwrap(), "--cache-tier", "floppy"],
        vec!["serve", "--addr", "127.0.0.1:0", "--cache-tier", "floppy"],
    ] {
        let out = run(&subcommand);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{subcommand:?}: expected exit 1, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown cache tier `floppy`")
                && stderr.contains("memory, disk, tiered, remote, null"),
            "{subcommand:?}: diagnostic must name the tier and the valid set, got: {stderr}"
        );
    }

    // A persistent tier without a directory is the same class of error.
    let out = run(&["optimize", a.to_str().unwrap(), "--cache-tier", "disk"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires --cache-dir"),
        "must explain the missing directory"
    );

    // ...as is a directory paired with a tier that cannot persist into it
    // (silently ignoring --cache-dir would fake the persistence the user
    // asked for).
    let cache = tmp.join("cache");
    for tier in ["memory", "null"] {
        let out = run(&[
            "optimize",
            a.to_str().unwrap(),
            "--cache-tier",
            tier,
            "--cache-dir",
            cache.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(1), "{tier} + --cache-dir");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("does not persist to --cache-dir"),
            "{tier}: must refuse the unused directory"
        );
    }
}

/// `--log-level` follows the same refusal contract as `--cache-tier`: an
/// unknown level exits 1 and the diagnostic names both the bad value and
/// the valid set, on every subcommand that accepts the flag.
#[test]
fn cli_unknown_log_level_exits_1_with_diagnostic() {
    let tmp = std::env::temp_dir().join(format!("popqc-badlog-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);
    let a = tmp.join("a.qasm");
    std::fs::write(&a, "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n").unwrap();

    for subcommand in [
        vec!["optimize", a.to_str().unwrap(), "--log-level", "loud"],
        vec!["serve", "--addr", "127.0.0.1:0", "--log-level", "loud"],
    ] {
        let out = run(&subcommand);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{subcommand:?}: expected exit 1, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown log level `loud`")
                && stderr.contains("error, warn, info, debug"),
            "{subcommand:?}: diagnostic must name the level and the valid set, got: {stderr}"
        );
    }

    // A bad per-target spec is refused the same way (the filter grammar
    // is validated as a whole, not just a bare level).
    let out = run(&[
        "optimize",
        a.to_str().unwrap(),
        "--log-level",
        "info,qexec=blaring",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown log level `blaring`"),
        "per-target specs must be validated too"
    );
}

#[test]
fn cli_cache_dir_persists_across_two_processes() {
    let tmp = std::env::temp_dir().join(format!("popqc-persist-test-{}", std::process::id()));
    let in_dir = tmp.join("in");
    let cache_dir = tmp.join("cache");
    std::fs::create_dir_all(&in_dir).unwrap();
    let _cleanup = Cleanup(&tmp);

    for (family, qubits) in [("vqe", "8"), ("grover", "6")] {
        let out = run(&[
            "gen",
            "--family",
            family,
            "--qubits",
            qubits,
            "--seed",
            "3",
            "--out",
            in_dir.to_str().unwrap(),
        ]);
        assert_success(&out, &format!("gen {family}"));
    }

    let optimize = |report: &std::path::Path| {
        let out = run(&[
            "optimize",
            in_dir.to_str().unwrap(),
            "--omega",
            "64",
            "--workers",
            "2",
            "--cache-tier",
            "tiered",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
            "--quiet",
        ]);
        assert_success(&out, "optimize with cache dir");
        serde_json::from_str(&std::fs::read_to_string(report).unwrap()).expect("report JSON")
    };

    // Process one: cold. Process two: an entirely new process over the
    // same directory must be all hits with zero oracle calls.
    let cold = optimize(&tmp.join("cold.json"));
    let cold_pass = &cold.get("passes").unwrap().as_array().unwrap()[0];
    assert_eq!(cold_pass.get("cache_hits").unwrap().as_u64(), Some(0));
    assert!(
        cold_pass
            .get("oracle_calls_issued")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    let warm = optimize(&tmp.join("warm.json"));
    let warm_pass = &warm.get("passes").unwrap().as_array().unwrap()[0];
    assert_eq!(warm_pass.get("cache_hits").unwrap().as_u64(), Some(2));
    assert_eq!(
        warm_pass.get("oracle_calls_issued").unwrap().as_u64(),
        Some(0),
        "second process must answer entirely from the disk tier"
    );
    let service = warm.get("service").unwrap();
    assert_eq!(
        service.get("cache_backend").unwrap().as_str(),
        Some("tiered")
    );
    assert_eq!(
        service.get("oracle_calls_issued").unwrap().as_u64(),
        Some(0)
    );
}

#[test]
fn cli_cache_warm_stats_clear_cycle() {
    let tmp = std::env::temp_dir().join(format!("popqc-cachecmd-test-{}", std::process::id()));
    let in_dir = tmp.join("in");
    let cache_dir = tmp.join("cache");
    std::fs::create_dir_all(&in_dir).unwrap();
    let _cleanup = Cleanup(&tmp);

    for (family, qubits) in [("vqe", "8"), ("statevec", "5")] {
        let out = run(&[
            "gen",
            "--family",
            family,
            "--qubits",
            qubits,
            "--seed",
            "5",
            "--out",
            in_dir.to_str().unwrap(),
        ]);
        assert_success(&out, &format!("gen {family}"));
    }

    // warm: pre-populates the disk tier and prints a CacheReport.
    let out = run(&[
        "cache",
        "warm",
        in_dir.to_str().unwrap(),
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--omega",
        "64",
    ]);
    assert_success(&out, "cache warm");
    let report = qapi::CacheReport::from_json(
        &serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("warm JSON"),
    )
    .expect("warm CacheReport");
    assert_eq!(report.backend, "disk");
    assert_eq!(report.entries, 2);

    // A warmed directory serves an `optimize` run with zero oracle calls.
    let report_path = tmp.join("report.json");
    let out = run(&[
        "optimize",
        in_dir.to_str().unwrap(),
        "--omega",
        "64",
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_success(&out, "optimize over warmed cache");
    let report_doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    let pass = &report_doc.get("passes").unwrap().as_array().unwrap()[0];
    assert_eq!(pass.get("oracle_calls_issued").unwrap().as_u64(), Some(0));
    assert_eq!(pass.get("cache_hits").unwrap().as_u64(), Some(2));

    // stats: sees the persisted entries from a fresh process.
    let out = run(&["cache", "stats", "--cache-dir", cache_dir.to_str().unwrap()]);
    assert_success(&out, "cache stats");
    let stats = qapi::CacheReport::from_json(
        &serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("stats JSON"),
    )
    .expect("stats CacheReport");
    assert_eq!(stats.entries, 2);
    assert!(stats.bytes > 0);

    // clear: removes them and reports the count.
    let out = run(&["cache", "clear", "--cache-dir", cache_dir.to_str().unwrap()]);
    assert_success(&out, "cache clear");
    let cleared = qapi::CacheClearResponse::from_json(
        &serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("clear JSON"),
    )
    .expect("CacheClearResponse");
    assert!(cleared.cleared);
    assert_eq!(cleared.entries_removed, 2);

    let out = run(&["cache", "stats", "--cache-dir", cache_dir.to_str().unwrap()]);
    assert_success(&out, "cache stats after clear");
    let stats = qapi::CacheReport::from_json(
        &serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap(),
    )
    .unwrap();
    assert_eq!(stats.entries, 0);

    // A missing directory is a diagnostic, not a panic.
    let out = run(&[
        "cache",
        "stats",
        "--cache-dir",
        tmp.join("nope").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not exist"));
}

/// The PR's acceptance property, end to end over real processes: a
/// `popqc serve --cache-tier tiered --cache-dir …` process is killed and
/// restarted, and the repeated POST answers from the disk tier with
/// `cache_hit == true` and zero new oracle calls.
#[test]
fn cli_serve_killed_and_restarted_answers_from_the_disk_tier() {
    use std::io::{BufRead, BufReader, Read, Write};

    let tmp = std::env::temp_dir().join(format!("popqc-serverestart-test-{}", std::process::id()));
    let cache_dir = tmp.join("cache");
    std::fs::create_dir_all(&tmp).unwrap();
    let _cleanup = Cleanup(&tmp);

    let spawn_serve = || {
        let mut child = Command::new(popqc_bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--threads-per-job",
                "1",
                "--omega",
                "64",
                "--cache-tier",
                "tiered",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn popqc serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before announcing its address")
                .unwrap();
            if let Some(rest) = line.split("http://").nth(1) {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        };
        (child, addr)
    };

    let send = |addr: &str, method: &str, target: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(addr).expect("connect to serve");
        write!(
            s,
            "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        reply
    };

    let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\nh q[0];\ncx q[0],q[1];\nx q[2];\nx q[2];\n";

    // Process one: compute and persist, then die.
    {
        let (mut child, addr) = spawn_serve();
        let _guard = KillOnDrop(&mut child);
        let reply = send(&addr, "POST", "/v1/optimize", qasm);
        assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
        assert!(reply.contains("\"cache_hit\":false"), "got: {reply}");
        // KillOnDrop kills the process here — an abrupt death, no
        // graceful shutdown path.
    }

    // Process two over the same directory: the identical POST is a hit
    // served from the disk tier, with zero oracle calls ever issued by
    // this process.
    let (mut child, addr) = spawn_serve();
    let _guard = KillOnDrop(&mut child);
    let reply = send(&addr, "POST", "/v1/optimize", qasm);
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
    assert!(
        reply.contains("\"cache_hit\":true"),
        "restarted server must answer from disk: {reply}"
    );
    let stats = send(&addr, "GET", "/v1/stats", "");
    assert!(
        stats.contains("\"oracle_calls_issued\":0"),
        "restart must not recompute: {stats}"
    );
    assert!(
        stats.contains("\"cache_backend\":\"tiered\""),
        "got: {stats}"
    );
    let cache = send(&addr, "GET", "/v1/cache", "");
    assert!(
        cache.contains("\"tier\":\"disk\""),
        "per-tier report must include the disk tier: {cache}"
    );
}

/// The remote-tier acceptance property, end to end over real processes:
/// a `popqc cached` server plus two `popqc serve --cache-tier remote`
/// replicas. A circuit optimized on replica A is a `cache_hit: true`
/// answer on replica B with zero oracle calls ever issued by B; killing
/// the cache server degrades both replicas to local misses (still 200,
/// never an error).
#[test]
fn cli_replica_fleet_shares_one_cache_server_and_survives_its_death() {
    use std::io::{BufRead, BufReader, Read, Write};

    let tmp = std::env::temp_dir().join(format!("popqc-fleet-test-{}", std::process::id()));
    let cache_dir = tmp.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();
    let _cleanup = Cleanup(&tmp);

    // Announced-address reader shared by both process kinds: `cached`
    // logs `addr=HOST:PORT`, `serve` logs `addr=http://HOST:PORT`.
    let read_addr = |child: &mut std::process::Child, what: &str| {
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        loop {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("{what} exited before announcing its address"))
                .unwrap();
            if let Some(rest) = line.split("addr=").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .trim_start_matches("http://")
                    .to_string();
            }
        }
    };

    let mut cached = Command::new(popqc_bin())
        .args([
            "cached",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn popqc cached");
    let cache_addr = read_addr(&mut cached, "cached");
    let cached_guard = KillOnDrop(&mut cached);

    let spawn_replica = || {
        let mut child = Command::new(popqc_bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--threads-per-job",
                "1",
                "--omega",
                "64",
                "--cache-tier",
                "remote",
                "--cache-addr",
                &cache_addr,
            ])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn popqc serve replica");
        let addr = read_addr(&mut child, "serve");
        (child, addr)
    };

    let send = |addr: &str, method: &str, target: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(addr).expect("connect to serve");
        write!(
            s,
            "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        reply
    };

    let (mut a, addr_a) = spawn_replica();
    let _guard_a = KillOnDrop(&mut a);
    let (mut b, addr_b) = spawn_replica();
    let _guard_b = KillOnDrop(&mut b);

    // Replica A computes; the result write-throughs to the cache server.
    let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\nh q[0];\ncx q[0],q[1];\nx q[2];\nx q[2];\n";
    let reply = send(&addr_a, "POST", "/v1/optimize", qasm);
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
    assert!(reply.contains("\"cache_hit\":false"), "got: {reply}");

    // Replica B — a different OS process — answers the identical POST
    // from the shared cache with zero oracle calls of its own.
    let reply = send(&addr_b, "POST", "/v1/optimize", qasm);
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
    assert!(
        reply.contains("\"cache_hit\":true"),
        "replica B must hit the shared cache: {reply}"
    );
    let stats = send(&addr_b, "GET", "/v1/stats", "");
    assert!(
        stats.contains("\"oracle_calls_issued\":0"),
        "B must never call an oracle: {stats}"
    );
    assert!(
        stats.contains("\"tier\":\"remote\""),
        "B's tier report names the remote tier: {stats}"
    );

    // Kill the cache server mid-run: replicas must keep answering 200
    // (local misses that recompute), never surface the dead server.
    let _ = cached_guard.0.kill();
    let _ = cached_guard.0.wait();
    let fresh = "OPENQASM 2.0;\nqreg q[2];\nx q[1];\nx q[1];\nh q[0];\n";
    for addr in [&addr_a, &addr_b] {
        let reply = send(addr, "POST", "/v1/optimize", fresh);
        assert!(
            reply.starts_with("HTTP/1.1 200"),
            "replica must degrade gracefully, got: {reply}"
        );
    }
    // The degradation is visible, not silent: the remote tier's error
    // counter is non-zero in the stats report.
    let stats = send(&addr_b, "GET", "/v1/stats", "");
    let errors = stats
        .split("\"errors\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no errors field in stats: {stats}"));
    assert!(errors > 0, "degraded ops must be counted: {stats}");
}
