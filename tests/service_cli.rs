//! End-to-end test of the `popqc` CLI: generate a directory of QASM
//! benchmarks, batch-optimize it twice in one process, and check the
//! acceptance properties — outputs re-parse and are semantically
//! equivalent, and the warm pass is pure cache hits with zero new oracle
//! calls (via the report's counters).

use std::path::Path;
use std::process::Command;

fn popqc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_popqc")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(popqc_bin())
        .args(args)
        .output()
        .expect("spawn popqc CLI")
}

fn assert_success(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn cli_round_trips_a_directory_with_warm_cache_second_pass() {
    let tmp = std::env::temp_dir().join(format!("popqc-cli-test-{}", std::process::id()));
    let in_dir = tmp.join("in");
    let out_dir = tmp.join("out");
    std::fs::create_dir_all(&in_dir).unwrap();
    let _cleanup = Cleanup(&tmp);

    // A small multi-family batch via `popqc gen`.
    for (family, qubits) in [
        ("vqe", "8"),
        ("grover", "6"),
        ("statevec", "5"),
        ("hhl", "6"),
    ] {
        let out = run(&[
            "gen",
            "--family",
            family,
            "--qubits",
            qubits,
            "--seed",
            "9",
            "--out",
            in_dir.to_str().unwrap(),
        ]);
        assert_success(&out, &format!("gen {family}"));
    }
    let inputs: Vec<_> = std::fs::read_dir(&in_dir).unwrap().collect();
    assert_eq!(inputs.len(), 4);

    // Batch-optimize the directory twice in one process, with verification.
    let report_path = tmp.join("report.json");
    let out = run(&[
        "optimize",
        in_dir.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--omega",
        "80",
        "--workers",
        "2",
        "--threads-per-job",
        "1",
        "--repeat",
        "2",
        "--verify",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_success(&out, "optimize");

    // Every output re-parses, is smaller, and is equivalent to its input.
    let mut checked = 0;
    for entry in std::fs::read_dir(&in_dir).unwrap() {
        let in_path = entry.unwrap().path();
        let out_path = out_dir.join(in_path.file_name().unwrap());
        let original = popqc::ir::qasm::parse(&std::fs::read_to_string(&in_path).unwrap()).unwrap();
        let optimized = popqc::ir::qasm::parse(&std::fs::read_to_string(&out_path).unwrap())
            .unwrap_or_else(|e| panic!("optimized {} does not re-parse: {e}", out_path.display()));
        assert!(optimized.validate().is_ok());
        assert!(
            optimized.len() <= original.len(),
            "{}: output larger than input",
            out_path.display()
        );
        assert!(
            popqc::sim::circuits_equivalent(&original, &optimized, 2, 0xFACE),
            "{}: semantics changed",
            out_path.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 4);

    // The report's counters prove the warm-cache property.
    let report = serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap())
        .expect("report parses as JSON");
    let passes = report.get("passes").unwrap().as_array().unwrap();
    assert_eq!(passes.len(), 2);
    let cold = &passes[0];
    let warm = &passes[1];
    assert_eq!(cold.get("cache_hits").unwrap().as_u64(), Some(0));
    assert!(cold.get("oracle_calls_issued").unwrap().as_u64().unwrap() > 0);
    assert_eq!(warm.get("cache_hits").unwrap().as_u64(), Some(4));
    assert_eq!(
        warm.get("oracle_calls_issued").unwrap().as_u64(),
        Some(0),
        "warm pass must issue zero oracle calls"
    );
    // Warm jobs are flagged individually too.
    for job in warm.get("jobs").unwrap().as_array().unwrap() {
        assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(true));
    }
    let service = report.get("service").unwrap();
    assert_eq!(service.get("cache_hits").unwrap().as_u64(), Some(4));
    assert_eq!(service.get("submitted").unwrap().as_u64(), Some(8));
}

#[test]
fn cli_families_lists_all_eight() {
    let out = run(&["families"]);
    assert_success(&out, "families");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = stdout.lines().collect();
    assert_eq!(listed.len(), 8);
    assert!(listed.contains(&"vqe") && listed.contains(&"shor"));
}

#[test]
fn cli_rejects_bad_input_cleanly() {
    let out = run(&["gen", "--family", "sqrt", "--qubits", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("at least"), "got: {stderr}");

    let out = run(&["optimize", "/nonexistent-popqc-path"]);
    assert!(!out.status.success());
}

/// Removes the temp tree on drop, including on panic.
struct Cleanup<'a>(&'a Path);

impl Drop for Cleanup<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(self.0);
    }
}
